"""Physical memory model."""

import pytest

from repro.osmodel.memory import PAGE_SIZE, PhysicalMemory


def test_from_gib():
    mem = PhysicalMemory.from_gib(16)
    assert mem.size_bytes == 16 << 30
    assert mem.size_gib == 16.0


def test_frame_counts():
    mem = PhysicalMemory.from_gib(8)
    assert mem.total_frames == (8 << 30) // PAGE_SIZE
    assert mem.usable_frames == mem.total_frames - mem.first_usable_frame


def test_phys_bits():
    assert PhysicalMemory.from_gib(8).phys_bits == 33
    assert PhysicalMemory.from_gib(16).phys_bits == 34
    assert PhysicalMemory.from_gib(32).phys_bits == 35


def test_frame_phys_roundtrip():
    mem = PhysicalMemory.from_gib(8)
    assert mem.phys_to_frame(mem.frame_to_phys(12345)) == 12345


def test_rejects_tiny_memory():
    with pytest.raises(ValueError):
        PhysicalMemory(size_bytes=1 << 20)


def test_rejects_unaligned_size():
    with pytest.raises(ValueError):
        PhysicalMemory(size_bytes=(1 << 30) + 17)
