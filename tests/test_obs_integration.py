"""End-to-end telemetry tests: CLI traces, manifests, determinism, --json."""

import json

import pytest

from repro import QUICK_SCALE, FuzzingCampaign, RunBudget, build_machine
from repro.cli import main
from repro.hammer.nops import tuned_config_for
from repro.obs import OBS, read_trace, strip_wall, telemetry_session


def _run_fuzz(tmp_path, extra=()):
    trace = tmp_path / "trace.jsonl"
    metrics = tmp_path / "metrics.json"
    argv = [
        "fuzz", "--platform", "comet_lake", "--dimm", "S3",
        "--patterns", "4", "--trace", str(trace),
        "--metrics-out", str(metrics), *extra,
    ]
    code = main(argv)
    assert code == 0
    return list(read_trace(trace)), json.loads(metrics.read_text())


def test_trace_stream_structure(tmp_path):
    records, manifest = _run_fuzz(tmp_path)
    # Header first: the manifest with the run's identity.
    assert records[0]["ev"] == "manifest"
    header = records[0]["data"]
    assert header["command"] == "fuzz"
    assert header["seed"] == 2025
    assert header["platform"] == "comet_lake"
    assert header["dimm"] == "S3"
    assert header["budget"]["patterns"] == 4
    assert header["git"]  # git describe or "unknown", never empty

    names = [r.get("name") for r in records if r.get("ph") == "B"]
    assert "cli.fuzz" in names
    assert "fuzz.campaign" in names
    assert "pool.batch" in names
    assert "pool.task" in names
    assert "hammer.pattern" in names

    # Nesting: fuzz.campaign under cli.fuzz, pool.batch under
    # fuzz.campaign, pool.task under pool.batch.
    begins = {r["name"]: r for r in records if r.get("ph") == "B"}
    assert begins["fuzz.campaign"]["parent"] == begins["cli.fuzz"]["id"]
    assert begins["pool.batch"]["parent"] == begins["fuzz.campaign"]["id"]
    assert begins["pool.task"]["parent"] == begins["pool.batch"]["id"]
    assert begins["pool.batch"]["attrs"]["workers"] >= 1

    # hammer.pattern end spans carry virtual durations; all ends carry wall.
    ends = {
        r["id"]: r for r in records if r.get("ev") == "span" and r["ph"] == "E"
    }
    pattern_begin = begins["hammer.pattern"]
    assert ends[pattern_begin["id"]]["attrs"]["virtual_ns"] > 0
    assert all("dur_s" in e["wall"] for e in ends.values())

    # Per-worker task events: pool.task ends name their worker pid.
    task_ids = [
        r["id"] for r in records
        if r.get("ph") == "B" and r["name"] == "pool.task"
    ]
    assert all("worker" in ends[i]["wall"] for i in task_ids)


def test_metrics_snapshot_covers_trr_and_windows(tmp_path):
    _, manifest = _run_fuzz(tmp_path)
    counters = manifest["metrics"]["counters"]
    histograms = manifest["metrics"]["histograms"]
    assert counters["dram.trr.acts_observed"] > 0
    assert counters["dram.trr.refs"] > 0
    assert any(k.startswith("dram.flips_by_window{") for k in counters)
    assert histograms["dram.acts_per_window"]["count"] > 0
    assert histograms["dram.trr.occupancy"]["count"] > 0
    assert manifest["exit_code"] == 0
    assert manifest["versions"]["python"]


def test_same_seed_runs_produce_identical_streams(tmp_path):
    """The determinism contract, end to end through the CLI."""

    def stripped(records):
        return [json.dumps(strip_wall(r), sort_keys=True) for r in records]

    first, manifest_a = _run_fuzz(tmp_path, extra=["--workers", "2"])
    second, manifest_b = _run_fuzz(tmp_path, extra=["--workers", "2"])
    assert stripped(first) == stripped(second)

    def deterministic(m):
        m = {k: v for k, v in m.items() if k != "wall"}
        m["metrics"] = {
            section: {k: v for k, v in values.items() if "wall" not in k}
            for section, values in m["metrics"].items()
        }
        return m

    assert deterministic(manifest_a) == deterministic(manifest_b)


def test_parallel_metrics_match_serial(tmp_path):
    serial = _run_fuzz(tmp_path)[1]["metrics"]
    parallel = _run_fuzz(tmp_path, extra=["--workers", "2"])[1]["metrics"]

    def no_wall(section):
        # health.* counters (worker_spawn, ...) only exist in runs that
        # spawn workers; they are the documented exclusion alongside wall
        # keys (docs/OBSERVABILITY.md).
        return {
            k: v
            for k, v in section.items()
            if "wall" not in k and not k.startswith("health.")
        }

    assert no_wall(serial["counters"]) == no_wall(parallel["counters"])
    assert no_wall(serial["histograms"]) == no_wall(parallel["histograms"])


def test_window_detail_adds_per_window_points(tmp_path):
    records, _ = _run_fuzz(tmp_path, extra=["--trace-detail", "window"])
    windows = [r for r in records if r.get("name") == "dram.window"]
    assert windows, "window detail must emit per-refresh-window points"
    sample = windows[0]["attrs"]
    assert {"bank", "window", "acts"} <= set(sample)


def test_inspect_command(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert main([
        "fuzz", "--platform", "comet_lake", "--patterns", "3",
        "--trace", str(trace),
    ]) == 0
    capsys.readouterr()
    assert main(["inspect", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "fuzz on comet_lake/S3" in out
    assert "hammer.pattern" in out

    assert main(["inspect", str(trace), "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["tasks"]["total"] == 3
    assert "fuzz.campaign" in summary["spans"]


def test_inspect_top_ranking(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert main([
        "fuzz", "--platform", "comet_lake", "--patterns", "3",
        "--trace", str(trace),
    ]) == 0
    capsys.readouterr()
    assert main(["inspect", str(trace), "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "slowest  : (top 3 spans by wall)" in out

    assert main(["inspect", str(trace), "--top", "3", "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    ranked = summary["slowest"]
    assert len(ranked) == 3
    walls = [row["wall_s"] for row in ranked]
    assert walls == sorted(walls, reverse=True)
    assert ranked[0]["name"] == "cli.fuzz"  # the root span dominates


def test_inspect_skips_corrupt_lines_with_warning(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert main([
        "fuzz", "--platform", "comet_lake", "--patterns", "3",
        "--trace", str(trace),
    ]) == 0
    capsys.readouterr()
    good = trace.read_text().splitlines()
    lines = good[:]
    lines.insert(2, '{"ev": "span", "ph": "B"')  # truncated mid-write
    lines.append("¡not json!")
    trace.write_text("\n".join(lines) + "\n")

    assert main(["inspect", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "warning  : skipped 2 corrupt line(s)" in out

    assert main(["inspect", str(trace), "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["skipped_lines"] == 2
    assert summary["events"] == len(good)


def test_inspect_exit_codes(tmp_path, capsys):
    # Missing file: I/O error, exit 2.
    assert main(["inspect", str(tmp_path / "missing.jsonl")]) == 2
    assert "error" in capsys.readouterr().err

    # Present but holding no parseable records: exit 1.
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["inspect", str(empty)]) == 1
    assert "no parseable trace records" in capsys.readouterr().err

    garbage = tmp_path / "garbage.jsonl"
    garbage.write_text("not json\nnot json either\n")
    assert main(["inspect", str(garbage)]) == 1
    err = capsys.readouterr().err
    assert "2 corrupt line(s) skipped" in err


def test_json_output_fuzz(capsys):
    code = main(["fuzz", "--platform", "comet_lake", "--patterns", "3",
                 "--json"])
    out = capsys.readouterr().out
    assert code == 0
    payload = json.loads(out)
    assert payload["command"] == "fuzz"
    assert payload["patterns_tried"] == 3
    assert isinstance(payload["total_flips"], int)


def test_json_output_sweep(capsys):
    code = main(["sweep", "--platform", "comet_lake", "--locations", "4",
                 "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["locations"] == 4
    assert len(payload["flips_per_location"]) == 4


def test_json_output_exploit(capsys):
    code = main(["exploit", "--platform", "raptor_lake", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["succeeded"] is True
    assert payload["exploitable_flips"] > 0


def test_json_output_campaign(capsys):
    code = main(["campaign", "--platform", "comet_lake", "--patterns", "6",
                 "--locations", "4", "--no-exploit", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["succeeded"] is True
    assert payload["fuzzing"]["patterns_tried"] == 6
    assert payload["sweep"]["locations"] == 4


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert "rhohammer 1" in capsys.readouterr().out


def test_cli_leaves_telemetry_disabled(tmp_path):
    _run_fuzz(tmp_path)
    assert not OBS.enabled
    assert not OBS.tracer.enabled
    assert not OBS.metrics.enabled


def test_telemetry_session_library_use():
    """Library callers get the same telemetry without touching the CLI."""
    machine = build_machine("comet_lake", "S3", scale=QUICK_SCALE, seed=11)
    config = tuned_config_for("comet_lake")
    with telemetry_session(trace_memory=True, metrics=True) as obs:
        FuzzingCampaign(
            machine=machine, config=config, scale=QUICK_SCALE
        ).execute(RunBudget(max_trials=2))
        snapshot = obs.metrics.snapshot()
        events = obs.tracer.memory_events
    assert snapshot["counters"]["fuzz.patterns_tried"] == 2
    assert any(e.get("name") == "fuzz.campaign" for e in events)
    assert not OBS.enabled  # session restored the disabled state
