"""CSV/JSON result export."""

import csv
import io
import json

import pytest

from repro.analysis.export import (
    load_table_json,
    series_to_csv,
    table_to_csv,
    table_to_json,
)
from repro.analysis.reporting import Table


@pytest.fixture()
def table():
    t = Table("demo", ["arch", "flips"])
    t.add_row("comet_lake", 100)
    t.add_row("raptor_lake", 7)
    return t


def test_csv_round_trips_through_reader(table):
    rows = list(csv.reader(io.StringIO(table_to_csv(table))))
    assert rows[0] == ["arch", "flips"]
    assert rows[1] == ["comet_lake", "100"]
    assert len(rows) == 3


def test_json_contains_title_and_rows(table):
    payload = json.loads(table_to_json(table))
    assert payload["title"] == "demo"
    assert payload["rows"][1] == {"arch": "raptor_lake", "flips": "7"}


def test_json_round_trip(table):
    rebuilt = load_table_json(table_to_json(table))
    assert rebuilt.title == table.title
    assert rebuilt.columns == table.columns
    assert rebuilt.rows == table.rows


def test_series_to_csv_aligns_columns():
    text = series_to_csv({"b": [1, 2], "a": [3, 4]}, index_name="loc")
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == ["loc", "a", "b"]
    assert rows[1] == ["0", "3", "1"]
    assert rows[2] == ["1", "4", "2"]


def test_series_to_csv_rejects_ragged_input():
    with pytest.raises(ValueError):
        series_to_csv({"a": [1], "b": [1, 2]})


def test_empty_series():
    assert series_to_csv({}) == "index\r\n"
