"""Run registry tests: migrations, concurrency, queries, trends, CLI."""

from __future__ import annotations

import json
import sqlite3
import threading

import pytest

from repro.cli import main
from repro.obs.registry import (
    SCHEMA_VERSION,
    MetricTrend,
    RegistryError,
    RunRegistry,
    compute_trend,
    compute_trends,
    default_registry_path,
    flatten_bench,
    flatten_metrics,
    flatten_phases,
    format_history,
    format_trends,
)
from repro.obs.store import _MIGRATIONS, RunStore, SqliteRunStore


def _manifest(flips=100, seed=1, git="abc1234", command="fuzz", **extra):
    manifest = {
        "command": command,
        "platform": "raptor_lake",
        "dimm": "S3",
        "seed": seed,
        "scale": "quick",
        "git": git,
        "budget": {"patterns": 4, "workers": 2},
        "exit_code": 0,
        "metrics": {
            "counters": {"dram.flips_total": flips, "dram.acts_total": 9000},
            "gauges": {"fuzz.best_pattern_flips": flips // 2},
            "histograms": {
                "pool.task_wall_seconds": {
                    "count": 4, "sum": 2.0, "mean": 0.5,
                    "p50": 0.4, "p90": 0.9, "p99": 1.0,
                }
            },
        },
    }
    manifest.update(extra)
    return manifest


# ----------------------------------------------------------------------
# Flattening
# ----------------------------------------------------------------------
def test_flatten_metrics_sections_and_bools():
    flat = flatten_metrics(
        {
            "counters": {"a.b": 3, "skip": "text"},
            "gauges": {"ok": True},
            "histograms": {"h": {"count": 2, "mean": 1.5, "buckets": [[1, 2]]}},
        }
    )
    assert flat["counters.a.b"] == 3.0
    assert flat["gauges.ok"] == 1.0
    assert flat["histograms.h.count"] == 2.0
    assert flat["histograms.h.mean"] == 1.5
    assert "counters.skip" not in flat
    assert not any("buckets" in k for k in flat)


def test_flatten_phases_and_bench():
    phases = {"fuzz.campaign": {"count": 1, "wall_s": 2.5, "self_wall_s": 0.5,
                                "virtual_s": 9.0, "errors": 0}}
    flat = flatten_phases(phases)
    assert flat["phases.fuzz.campaign.wall_s"] == 2.5
    assert "phases.fuzz.campaign.errors" not in flat  # not a tracked stat

    bench = flatten_bench(
        {"benches": {"fuzz": {"checks": {"total_flips": 7, "ok": True},
                              "timings": {"wall_s": 1.25}}}}
    )
    assert bench["bench.fuzz.checks.total_flips"] == 7.0
    assert bench["bench.fuzz.checks.ok"] == 1.0
    assert bench["bench.fuzz.timings.wall_s"] == 1.25


# ----------------------------------------------------------------------
# Recording and querying
# ----------------------------------------------------------------------
def test_record_and_query_round_trip(tmp_path):
    db = tmp_path / "registry.sqlite"
    with RunRegistry(db) as reg:
        run_id = reg.record_run(
            _manifest(), phases={"cli.fuzz": {"count": 1, "wall_s": 3.0}},
            recorded_at="2026-01-01T00:00:00+0000",
        )
        assert run_id == 1
        records = reg.runs()
        assert len(records) == 1
        rec = records[0]
        assert rec.kind == "run"
        assert rec.command == "fuzz"
        assert rec.platform == "raptor_lake"
        assert rec.seed == 1
        assert rec.exit_code == 0
        samples = reg.samples_for(run_id)
        assert samples["counters.dram.flips_total"] == 100.0
        assert samples["phases.cli.fuzz.wall_s"] == 3.0
        assert samples["budget.patterns"] == 4.0
        assert samples["histograms.pool.task_wall_seconds.p90"] == 0.9


def test_runs_filters_and_newest_limit(tmp_path):
    db = tmp_path / "registry.sqlite"
    with RunRegistry(db) as reg:
        for i in range(5):
            reg.record_run(_manifest(seed=i, git=f"g{i}-dirty"))
        reg.record_run(_manifest(command="sweep", seed=9))
        assert len(reg.runs()) == 6
        assert [r.seed for r in reg.runs(command="fuzz")] == [0, 1, 2, 3, 4]
        # limit keeps the newest N, still reported oldest-first
        assert [r.seed for r in reg.runs(command="fuzz", limit=2)] == [3, 4]
        assert [r.run_id for r in reg.runs(git="g2")] == [3]
        assert reg.runs(platform="comet_lake") == []


def test_record_bench_and_metric_keys(tmp_path):
    db = tmp_path / "registry.sqlite"
    payload = {
        "schema": "rhohammer-bench-all/v1", "suite": "quick",
        "scale": "QUICK", "git": "abc",
        "benches": {"fuzz": {"checks": {"total_flips": 12},
                             "timings": {"wall_s": 0.5}}},
    }
    with RunRegistry(db) as reg:
        run_id = reg.record_bench(payload)
        rec = reg.runs(kind="bench")[0]
        assert rec.suite == "quick"
        assert rec.command == "bench"
        assert reg.samples_for(run_id)["bench.fuzz.checks.total_flips"] == 12.0
        assert reg.metric_keys("bench.*.checks.*") == [
            "bench.fuzz.checks.total_flips"
        ]


def test_series_skips_runs_without_the_metric(tmp_path):
    db = tmp_path / "registry.sqlite"
    with RunRegistry(db) as reg:
        reg.record_run(_manifest(flips=10))
        reg.record_run({"command": "fuzz", "metrics": {}})
        reg.record_run(_manifest(flips=30))
        points = reg.series("counters.dram.flips_total")
        assert [p.value for p in points] == [10.0, 30.0]
        assert [p.run_id for p in points] == [1, 3]


# ----------------------------------------------------------------------
# Schema versioning and migration
# ----------------------------------------------------------------------
def _build_v1_db(path):
    """A database exactly as schema v1 wrote it, with one recorded run."""
    conn = sqlite3.connect(path)
    for statement in _MIGRATIONS[1]:
        conn.execute(statement)
    conn.execute("PRAGMA user_version = 1")
    conn.execute(
        "INSERT INTO runs (recorded_at, kind, command, platform, dimm,"
        " seed, scale, git, exit_code)"
        " VALUES ('2025-12-01T00:00:00+0000', 'run', 'fuzz', 'raptor_lake',"
        " 'S3', 7, 'quick', 'old1234', 0)"
    )
    conn.execute(
        "INSERT INTO samples (run_id, key, value)"
        " VALUES (1, 'counters.dram.flips_total', 42.0)"
    )
    conn.commit()
    conn.close()


def test_migration_round_trip_preserves_v1_data(tmp_path):
    db = tmp_path / "registry.sqlite"
    _build_v1_db(db)
    with RunRegistry(db) as reg:
        assert reg.schema_version == SCHEMA_VERSION
        rec = reg.runs()[0]
        assert rec.seed == 7
        assert rec.suite is None  # column added by the v2 migration
        assert reg.samples_for(rec.run_id) == {
            "counters.dram.flips_total": 42.0
        }
        # the migrated database accepts new-schema writes
        reg.record_bench({"suite": "quick", "scale": "QUICK", "git": "g",
                          "benches": {}})
        assert [r.kind for r in reg.runs()] == ["run", "bench"]
    # reopening is idempotent — no second migration, data intact
    with RunRegistry(db) as reg:
        assert reg.schema_version == SCHEMA_VERSION
        assert len(reg.runs()) == 2


def test_newer_schema_version_is_refused(tmp_path):
    db = tmp_path / "registry.sqlite"
    conn = sqlite3.connect(db)
    conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
    conn.commit()
    conn.close()
    with pytest.raises(RegistryError, match="newer"):
        RunRegistry(db)


def test_concurrent_writers_one_db(tmp_path):
    """Two independent connections interleaving writes lose nothing."""
    db = tmp_path / "registry.sqlite"
    per_writer = 8
    errors: list[Exception] = []

    def writer(tag: int) -> None:
        try:
            with RunRegistry(db) as reg:
                for i in range(per_writer):
                    reg.record_run(_manifest(seed=tag * 1000 + i))
        except Exception as exc:  # pragma: no cover - fails the assert below
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(t,)) for t in (1, 2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    with RunRegistry(db) as reg:
        records = reg.runs()
        assert len(records) == 2 * per_writer
        assert sorted(r.seed for r in records) == sorted(
            t * 1000 + i for t in (1, 2) for i in range(per_writer)
        )
        # every run kept its full sample set (no torn transactions)
        for rec in records:
            assert reg.samples_for(rec.run_id)[
                "counters.dram.flips_total"
            ] == 100.0


# ----------------------------------------------------------------------
# Trends
# ----------------------------------------------------------------------
def _series(values, db_path, metric_manifest=_manifest):
    with RunRegistry(db_path) as reg:
        for i, v in enumerate(values):
            reg.record_run(metric_manifest(flips=v, git=f"g{i}"))
        return reg.series("counters.dram.flips_total")


def test_trend_classifications(tmp_path):
    points = _series([100, 102, 99, 101, 100, 60], tmp_path / "a.sqlite")
    trend = compute_trend("counters.dram.flips_total", points)
    assert trend.direction == "higher"
    assert trend.classification == "regression"
    assert trend.baseline == 100.0  # rolling median of the window
    assert trend.gated and trend.regressed

    up = compute_trend(
        "counters.dram.flips_total",
        _series([100, 101, 100, 150], tmp_path / "b.sqlite"),
    )
    assert up.classification == "improvement"

    flat = compute_trend(
        "counters.dram.flips_total",
        _series([100, 101, 100, 102], tmp_path / "c.sqlite"),
    )
    assert flat.classification == "neutral"

    short = compute_trend(
        "counters.dram.flips_total", _series([5], tmp_path / "d.sqlite")
    )
    assert short.classification == "insufficient"
    assert not short.regressed


def test_trend_window_bounds_the_median(tmp_path):
    # Old fast history must age out of the window: with window=3 the
    # median sees only the recent slow plateau, so the latest value is
    # neutral, not an improvement against ancient numbers.
    points = _series([10, 10, 200, 200, 200, 200], tmp_path / "w.sqlite")
    trend = compute_trend("counters.dram.flips_total", points, window=3)
    assert trend.baseline == 200.0
    assert trend.classification == "neutral"


def test_wall_metrics_lax_and_ungated_by_default():
    trend = MetricTrend  # silence lint about unused import pattern
    del trend
    from repro.obs.registry import TrendPoint

    def pts(values):
        return [
            TrendPoint(run_id=i + 1, recorded_at="t", git="g", value=v)
            for i, v in enumerate(values)
        ]

    wall = compute_trend("phases.cli.fuzz.wall_s", pts([1.0, 1.0, 1.2]))
    assert wall.wall
    assert wall.classification == "neutral"  # +20% within the lax 30%
    slow = compute_trend("phases.cli.fuzz.wall_s", pts([1.0, 1.0, 2.0]))
    assert slow.classification == "regression"
    assert not slow.gated and not slow.regressed  # informational only
    gated = compute_trend(
        "phases.cli.fuzz.wall_s", pts([1.0, 1.0, 2.0]), gate_wall=True
    )
    assert gated.regressed


def test_compute_trends_glob_expansion(tmp_path):
    db = tmp_path / "registry.sqlite"
    with RunRegistry(db) as reg:
        reg.record_run(_manifest(flips=10))
        reg.record_run(_manifest(flips=20))
        trends = compute_trends(reg, ["counters.dram.*", "missing.metric"])
        names = [t.metric for t in trends]
        assert "counters.dram.flips_total" in names
        assert "counters.dram.acts_total" in names
        missing = [t for t in trends if t.metric == "missing.metric"]
        assert missing and missing[0].classification == "insufficient"
        text = format_trends(trends)
        assert "counters.dram.flips_total" in text
        assert "verdict:" in text


# ----------------------------------------------------------------------
# Default path resolution
# ----------------------------------------------------------------------
def test_default_registry_path_rules(tmp_path, monkeypatch):
    monkeypatch.delenv("RHOHAMMER_REGISTRY", raising=False)
    assert default_registry_path(None) is None
    out = tmp_path / "runs" / "a"
    assert default_registry_path(out) == str(tmp_path / "runs" / "registry.sqlite")
    monkeypatch.setenv("RHOHAMMER_REGISTRY", str(tmp_path / "x.sqlite"))
    assert default_registry_path(out) == str(tmp_path / "x.sqlite")
    monkeypatch.setenv("RHOHAMMER_REGISTRY", "none")
    assert default_registry_path(out) is None


# ----------------------------------------------------------------------
# CLI: history and trends (golden JSON output)
# ----------------------------------------------------------------------
@pytest.fixture()
def seeded_db(tmp_path):
    db = tmp_path / "registry.sqlite"
    with RunRegistry(db) as reg:
        for i, flips in enumerate([100, 101, 99, 100, 40]):
            reg.record_run(
                _manifest(flips=flips, seed=7, git=f"aaa{i}"),
                recorded_at=f"2026-01-0{i + 1}T00:00:00+0000",
            )
    return db


def test_cli_history_golden_json(seeded_db, capsys):
    code = main(
        ["history", "--registry", str(seeded_db), "--limit", "2", "--json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload == {
        "registry": str(seeded_db),
        "runs": [
            {
                "command": "fuzz", "dimm": "S3", "exit_code": 0,
                "git": "aaa3", "id": 4, "kind": "run",
                "platform": "raptor_lake",
                "recorded_at": "2026-01-04T00:00:00+0000",
                "scale": "quick", "seed": 7, "suite": None, "tag": None,
            },
            {
                "command": "fuzz", "dimm": "S3", "exit_code": 0,
                "git": "aaa4", "id": 5, "kind": "run",
                "platform": "raptor_lake",
                "recorded_at": "2026-01-05T00:00:00+0000",
                "scale": "quick", "seed": 7, "suite": None, "tag": None,
            },
        ],
    }


def test_cli_history_table_and_filters(seeded_db, capsys):
    assert main(["history", "--registry", str(seeded_db)]) == 0
    out = capsys.readouterr().out
    assert "5 run(s)" in out
    assert "raptor_lake/S3 seed=7" in out
    assert main(
        ["history", "--registry", str(seeded_db), "--platform", "comet_lake"]
    ) == 0
    assert "no matching runs" in capsys.readouterr().out


def test_cli_trends_golden_json_and_check_gate(seeded_db, capsys):
    code = main(
        ["trends", "counters.dram.flips_total", "--registry", str(seeded_db),
         "--json", "--check"]
    )
    assert code == 1  # the 100 -> 40 drop gates
    payload = json.loads(capsys.readouterr().out)
    assert payload == {
        "registry": str(seeded_db),
        "trends": [
            {
                "metric": "counters.dram.flips_total",
                "direction": "higher",
                "wall": False,
                "baseline": 100.0,
                "latest": 40.0,
                "rel": -0.6,
                "classification": "regression",
                "gated": True,
                "points": [
                    {"run": 1, "recorded_at": "2026-01-01T00:00:00+0000",
                     "git": "aaa0", "value": 100.0},
                    {"run": 2, "recorded_at": "2026-01-02T00:00:00+0000",
                     "git": "aaa1", "value": 101.0},
                    {"run": 3, "recorded_at": "2026-01-03T00:00:00+0000",
                     "git": "aaa2", "value": 99.0},
                    {"run": 4, "recorded_at": "2026-01-04T00:00:00+0000",
                     "git": "aaa3", "value": 100.0},
                    {"run": 5, "recorded_at": "2026-01-05T00:00:00+0000",
                     "git": "aaa4", "value": 40.0},
                ],
            }
        ],
    }


def test_cli_trends_without_check_reports_but_exits_zero(seeded_db, capsys):
    code = main(
        ["trends", "counters.dram.flips_total", "--registry", str(seeded_db)]
    )
    assert code == 0
    assert "regression" in capsys.readouterr().out


def test_cli_missing_registry_is_exit_2(tmp_path, capsys, monkeypatch):
    monkeypatch.delenv("RHOHAMMER_REGISTRY", raising=False)
    assert main(["history"]) == 2
    assert "no registry" in capsys.readouterr().err
    missing = tmp_path / "nope.sqlite"
    assert main(["history", "--registry", str(missing)]) == 2
    assert "no registry database" in capsys.readouterr().err


# ----------------------------------------------------------------------
# End-to-end: an instrumented CLI run auto-registers
# ----------------------------------------------------------------------
def test_fuzz_run_with_out_auto_registers(recorded_runs, capsys):
    run = recorded_runs(
        "registry-fuzz", "fuzz", "--platform", "comet_lake", "--dimm", "S3",
        "--patterns", "3",
    )
    db = run.parent / "registry.sqlite"
    assert db.is_file()
    with RunRegistry(db) as reg:
        records = reg.runs(command="fuzz", platform="comet_lake")
        assert records
        samples = reg.samples_for(records[-1].run_id)
        assert "counters.dram.flips_total" in samples
        # per-phase rollups from the trace landed too
        assert "phases.cli.fuzz.wall_s" in samples
        assert "phases.fuzz.campaign.count" in samples
    capsys.readouterr()  # swallow the run's report


def test_registry_flag_none_disables_recording(tmp_path, capsys):
    out = tmp_path / "runs" / "a"
    code = main(
        ["fuzz", "--platform", "comet_lake", "--patterns", "2",
         "--out", str(out), "--registry", "none"]
    )
    assert code == 0
    assert not (tmp_path / "runs" / "registry.sqlite").exists()
    capsys.readouterr()


def test_registry_failure_never_fails_the_run(tmp_path, capsys):
    out = tmp_path / "runs" / "a"
    bad = tmp_path / "missing-dir" / "sub" / "registry.sqlite"
    code = main(
        ["fuzz", "--platform", "comet_lake", "--patterns", "2",
         "--out", str(out), "--registry", str(bad)]
    )
    assert code == 0
    err = capsys.readouterr().err
    assert "warning: run registry" in err


def test_history_format_renders_bench_rows(tmp_path):
    db = tmp_path / "registry.sqlite"
    with RunRegistry(db) as reg:
        reg.record_bench({"suite": "quick", "scale": "QUICK", "git": "g",
                          "benches": {}})
        text = format_history(reg.runs(), reg)
    assert "suite=quick" in text
    assert "bench" in text


# ----------------------------------------------------------------------
# RunStore storage interface
# ----------------------------------------------------------------------
def test_sqlite_store_satisfies_runstore_contract(tmp_path):
    with SqliteRunStore(tmp_path / "registry.sqlite") as store:
        assert isinstance(store, RunStore)
        assert store.schema_version == SCHEMA_VERSION
        run_id = store.insert_run(
            {"recorded_at": "2026-01-01T00:00:00+0000", "kind": "run",
             "command": "fuzz", "seed": 3},
            {"counters.dram.flips_total": 9.0},
        )
        rows = store.query_runs({"kind": "run"})
        assert [r["id"] for r in rows] == [run_id]
        assert rows[0]["seed"] == 3
        assert store.samples_for(run_id) == {
            "counters.dram.flips_total": 9.0
        }
        assert store.sample_keys() == ["counters.dram.flips_total"]
        assert store.sample_value(run_id, "counters.dram.flips_total") == 9.0
        assert store.sample_value(run_id, "nope") is None


def test_sqlite_store_rejects_unknown_fields_and_filters(tmp_path):
    with SqliteRunStore(tmp_path / "registry.sqlite") as store:
        with pytest.raises(RegistryError, match="unknown run fields"):
            store.insert_run({"kind": "run", "recorded_at": "t",
                              "bogus": 1}, {})
        with pytest.raises(RegistryError, match="unknown filter"):
            store.query_runs({"bogus": 1})


def test_registry_accepts_injected_store(tmp_path):
    """A custom RunStore slots in without touching registry call-sites."""
    store = SqliteRunStore(tmp_path / "registry.sqlite")
    with RunRegistry(store=store) as reg:
        assert reg.store is store
        assert reg.path == store.path
        reg.record_run(_manifest(flips=5))
        assert reg.series("counters.dram.flips_total")[0].value == 5.0


def test_registry_requires_path_or_store():
    with pytest.raises(RegistryError, match="path or a store"):
        RunRegistry()


# ----------------------------------------------------------------------
# Retention: tag / stats / gc
# ----------------------------------------------------------------------
from datetime import datetime, timedelta, timezone  # noqa: E402


def _seed_synthetic(db, count):
    """Bulk-insert ``count`` runs, one per hour from 2026-01-01, in one
    transaction (``insert_runs``), each carrying one sample."""
    base = datetime(2026, 1, 1, tzinfo=timezone.utc)
    rows = []
    for i in range(count):
        stamp = (base + timedelta(hours=i)).strftime("%Y-%m-%dT%H:%M:%S%z")
        rows.append((
            {"recorded_at": stamp, "kind": "run", "command": "fuzz",
             "platform": "raptor_lake", "dimm": "S3", "seed": i,
             "scale": "quick", "git": f"g{i:04d}", "suite": None,
             "exit_code": 0, "tag": None},
            {"counters.dram.flips_total": float(i)},
        ))
    with RunRegistry(db) as reg:
        return reg.store.insert_runs(rows)


def test_record_run_is_one_write_transaction(tmp_path):
    """The acceptance budget is <= 3 transactions per recorded run; the
    batched insert path actually needs exactly one."""
    with RunRegistry(tmp_path / "registry.sqlite") as reg:
        before = reg.store.write_transactions
        reg.record_run(_manifest())
        assert reg.store.write_transactions - before == 1
        before = reg.store.write_transactions
        reg.record_bench({"suite": "quick", "scale": "QUICK", "git": "g",
                          "benches": {}})
        assert reg.store.write_transactions - before == 1


def test_gc_round_trips_a_thousand_run_registry(tmp_path):
    db = tmp_path / "registry.sqlite"
    ids = _seed_synthetic(db, 1000)
    assert ids == list(range(1, 1001))
    now = datetime(2026, 1, 1, tzinfo=timezone.utc) + timedelta(hours=1000)
    with RunRegistry(db) as reg:
        assert reg.tag(ids[0], "baseline")  # pin the oldest run

        # Dry run: full report, nothing deleted.
        report = reg.gc(keep_last=100, dry_run=True)
        assert report.examined == 1000
        assert report.pruned == 899  # 1000 - 100 newest - 1 tagged
        assert report.kept_tagged == 1
        assert report.dry_run and not report.vacuumed
        assert len(reg.runs()) == 1000

        # Age policy: everything recorded > 500h before `now` expires,
        # except the tagged anchor.
        report = reg.gc(max_age_days=500 / 24.0, now=now)
        assert report.pruned == 499
        assert report.kept_tagged == 1
        remaining = reg.runs()
        assert len(remaining) == 501
        assert remaining[0].run_id == ids[0]
        assert remaining[0].tag == "baseline"

        # Count policy with tag protection off: prune to the newest 50.
        report = reg.gc(keep_last=50, keep_tagged=False)
        assert report.pruned == 451
        remaining = reg.runs()
        assert [r.run_id for r in remaining] == ids[-50:]
        # Survivors' samples round-trip intact.
        assert reg.samples_for(remaining[-1].run_id) == {
            "counters.dram.flips_total": 999.0
        }
        stats = reg.stats()
        assert stats["runs"] == 50 and stats["samples"] == 50
        assert stats["tagged"] == 0


def test_gc_requires_a_policy_and_validates(tmp_path):
    db = tmp_path / "registry.sqlite"
    _seed_synthetic(db, 3)
    with RunRegistry(db) as reg:
        with pytest.raises(RegistryError, match="retention policy"):
            reg.gc()
        with pytest.raises(RegistryError, match=">= 0"):
            reg.gc(keep_last=-1)
        with pytest.raises(RegistryError, match=">= 0"):
            reg.gc(max_age_days=-0.5)
        # Unparseable stamps never age out.
        reg.store.insert_run(
            {"recorded_at": "not-a-timestamp", "kind": "run"}, {}
        )
        report = reg.gc(max_age_days=0.0,
                        now=datetime(2027, 1, 1, tzinfo=timezone.utc))
        assert report.examined == 4
        assert report.pruned == 3  # the unparseable row was kept


def test_migration_v2_to_v3_adds_tag(tmp_path):
    db = tmp_path / "registry.sqlite"
    conn = sqlite3.connect(db)
    for version in (1, 2):
        for statement in _MIGRATIONS[version]:
            conn.execute(statement)
    conn.execute("PRAGMA user_version = 2")
    conn.execute(
        "INSERT INTO runs (recorded_at, kind, command, platform, dimm,"
        " seed, scale, git, suite, exit_code)"
        " VALUES ('2025-12-01T00:00:00+0000', 'run', 'fuzz', 'raptor_lake',"
        " 'S3', 7, 'quick', 'old1234', NULL, 0)"
    )
    conn.commit()
    conn.close()
    with RunRegistry(db) as reg:
        assert reg.schema_version == SCHEMA_VERSION
        rec = reg.runs()[0]
        assert rec.tag is None  # column added by the v3 migration
        assert reg.tag(rec.run_id, "pinned")
        assert reg.runs()[0].tag == "pinned"


def test_migration_v3_to_v4_adds_health(tmp_path):
    db = tmp_path / "registry.sqlite"
    conn = sqlite3.connect(db)
    for version in (1, 2, 3):
        for statement in _MIGRATIONS[version]:
            conn.execute(statement)
    conn.execute("PRAGMA user_version = 3")
    conn.execute(
        "INSERT INTO runs (recorded_at, kind, command, platform, dimm,"
        " seed, scale, git, suite, exit_code, tag)"
        " VALUES ('2025-12-01T00:00:00+0000', 'run', 'fuzz', 'raptor_lake',"
        " 'S3', 7, 'quick', 'old1234', NULL, 0, NULL)"
    )
    conn.commit()
    conn.close()
    with RunRegistry(db) as reg:
        assert reg.schema_version == SCHEMA_VERSION
        rec = reg.runs()[0]
        assert rec.health is None  # column added by the v4 migration
        assert "health" not in rec.to_dict()  # pre-v4 payload shape
        # the migrated database accepts health-bearing writes
        reg.record_run(
            _manifest(flips=5),
            health={"samples": 3, "events": {"worker_spawn": 2}},
        )
        assert reg.runs()[1].health["samples"] == 3


def test_record_run_persists_health_column_and_samples(tmp_path):
    db = tmp_path / "registry.sqlite"
    summary = {
        "samples": 4,
        "alerts": 1,
        "events": {"worker_spawn": 2, "chunk_retry": 1},
        "peak_rss_bytes": 1024,
        "throughput": 2.5,
    }
    with RunRegistry(db) as reg:
        run_id = reg.record_run(_manifest(flips=10), health=summary)
        rec = reg.runs()[0]
        assert rec.health == summary
        assert rec.to_dict()["health"] == summary
        samples = reg.samples_for(run_id)
        assert samples["health.samples"] == 4.0
        assert samples["health.events.worker_spawn"] == 2.0
        assert samples["health.peak_rss_bytes"] == 1024.0
        assert samples["health.throughput"] == 2.5
        # runs recorded without health stay NULL, not "{}"
        reg.record_run(_manifest(flips=11))
        assert reg.runs()[1].health is None


def test_corrupt_health_column_degrades_to_none(tmp_path):
    db = tmp_path / "registry.sqlite"
    with RunRegistry(db) as reg:
        reg.record_run(_manifest(flips=10), health={"samples": 1})
    conn = sqlite3.connect(db)
    conn.execute("UPDATE runs SET health = 'not json' WHERE id = 1")
    conn.commit()
    conn.close()
    with RunRegistry(db) as reg:
        assert reg.runs()[0].health is None


def test_cli_registry_gc_stats_and_tag(tmp_path, capsys):
    db = tmp_path / "registry.sqlite"
    _seed_synthetic(db, 10)
    assert main(
        ["registry", "tag", "--registry", str(db), "1", "baseline"]
    ) == 0
    assert main(["registry", "stats", "--registry", str(db)]) == 0
    out = capsys.readouterr().out
    assert "run 1: tagged [baseline]" in out
    assert "runs:      10" in out
    assert "tagged:    1" in out

    code = main(["registry", "gc", "--registry", str(db),
                 "--keep-last", "3", "--dry-run", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["gc"]["pruned"] == 6  # 10 - 3 newest - 1 tagged
    assert payload["gc"]["dry_run"] is True

    assert main(["registry", "gc", "--registry", str(db),
                 "--keep-last", "3"]) == 0
    assert "pruned 6" in capsys.readouterr().out
    with RunRegistry(db) as reg:
        assert len(reg.runs()) == 4  # newest 3 + the tagged anchor

    assert main(["registry", "gc", "--registry", str(db)]) == 2
    assert "retention policy" in capsys.readouterr().err
    assert main(["registry", "tag", "--registry", str(db), "1",
                 "--clear"]) == 0
    assert "tag cleared" in capsys.readouterr().out
