"""Unified bench suite tests: schema, gate logic, CLI round trip."""

import copy
import json

import pytest

from repro.cli import main
from repro.obs.bench import SCHEMA, check_payload, run_suite


@pytest.fixture(scope="module")
def reveng_payload():
    return run_suite("quick", only=["reveng"])


def _synthetic_payload():
    return {
        "schema": SCHEMA,
        "suite": "quick",
        "benches": {
            "fuzz": {
                "checks": {
                    "total_flips": 100,
                    "bit_identical": True,
                    "virtual_s": 40.0,
                },
                "timings": {"wall_s": 2.0, "speedup": 1.8},
            },
        },
    }


def test_run_suite_payload_schema(reveng_payload):
    payload = reveng_payload
    assert payload["schema"] == SCHEMA
    assert payload["suite"] == "quick"
    assert payload["scale"] == "QUICK"
    assert payload["git"]
    assert set(payload["benches"]) == {"reveng"}
    bench = payload["benches"]["reveng"]
    assert bench["checks"]["fully_correct"] is True
    assert bench["checks"]["measurements"] > 0
    assert bench["checks"]["virtual_s"] > 0
    assert bench["timings"]["wall_s"] > 0
    json.dumps(payload)  # JSON-ready


def test_run_suite_rejects_unknown_bench():
    with pytest.raises(ValueError, match="unknown bench"):
        run_suite("quick", only=["warp_drive"])


def test_check_payload_passes_against_itself(reveng_payload):
    assert check_payload(reveng_payload, reveng_payload) == []
    assert check_payload(
        reveng_payload, copy.deepcopy(reveng_payload), wall_threshold=0.30
    ) == []


def test_check_payload_flags_numeric_drift():
    baseline = _synthetic_payload()
    current = copy.deepcopy(baseline)
    current["benches"]["fuzz"]["checks"]["total_flips"] = 80  # -20%
    failures = check_payload(current, baseline)
    assert any("total_flips" in f for f in failures)
    # Within tolerance: 4% move passes at the default ±5%.
    current["benches"]["fuzz"]["checks"]["total_flips"] = 96
    assert check_payload(current, baseline) == []


def test_check_payload_flags_boolean_flip_and_missing_bench():
    baseline = _synthetic_payload()
    current = copy.deepcopy(baseline)
    current["benches"]["fuzz"]["checks"]["bit_identical"] = False
    failures = check_payload(current, baseline)
    assert any("bit_identical" in f for f in failures)

    empty = copy.deepcopy(baseline)
    empty["benches"] = {}
    failures = check_payload(empty, baseline)
    assert failures == ["fuzz: missing from current run"]


def test_check_payload_rejects_schema_and_suite_mismatch():
    baseline = _synthetic_payload()
    current = copy.deepcopy(baseline)

    stale = copy.deepcopy(baseline)
    stale["schema"] = "rhohammer-bench-all/v0"
    assert any("schema" in f for f in check_payload(current, stale))

    full = copy.deepcopy(baseline)
    full["suite"] = "full"
    assert any("suite mismatch" in f for f in check_payload(current, full))


def test_wall_timings_gate_only_when_asked():
    baseline = _synthetic_payload()
    current = copy.deepcopy(baseline)
    current["benches"]["fuzz"]["timings"]["wall_s"] = 4.0  # 2x slower

    assert check_payload(current, baseline) == []  # ungated by default
    failures = check_payload(current, baseline, wall_threshold=0.30)
    assert any("wall_s" in f and "slower" in f for f in failures)

    # Speedups never fail, and non-seconds timing keys are never gated.
    faster = copy.deepcopy(baseline)
    faster["benches"]["fuzz"]["timings"]["wall_s"] = 0.5
    faster["benches"]["fuzz"]["timings"]["speedup"] = 0.1
    assert check_payload(faster, baseline, wall_threshold=0.30) == []


def test_cli_bench_round_trip(tmp_path, capsys):
    out = tmp_path / "BENCH_all.json"
    assert main([
        "bench", "--quick", "--only", "reveng", "--out", str(out),
    ]) == 0
    capsys.readouterr()
    payload = json.loads(out.read_text())
    assert payload["schema"] == SCHEMA

    # Self-gate: fresh identical-seed run against the file just written.
    again = tmp_path / "again.json"
    assert main([
        "bench", "--quick", "--only", "reveng", "--out", str(again),
        "--check", "--baseline", str(out),
    ]) == 0
    assert "bench gate ok" in capsys.readouterr().out

    # Perturbed baseline: deterministic drift must fail the gate.
    payload["benches"]["reveng"]["checks"]["measurements"] *= 2
    bad = tmp_path / "bad-baseline.json"
    bad.write_text(json.dumps(payload))
    assert main([
        "bench", "--quick", "--only", "reveng", "--out", str(again),
        "--check", "--baseline", str(bad),
    ]) == 1
    assert "bench gate FAILED" in capsys.readouterr().out

    # No baseline at all is its own, distinct error.
    assert main([
        "bench", "--quick", "--only", "reveng", "--out", str(again),
        "--check", "--baseline", str(tmp_path / "missing.json"),
    ]) == 2


def test_bench_json_output(tmp_path, capsys):
    out = tmp_path / "BENCH_all.json"
    assert main([
        "bench", "--quick", "--only", "reveng", "--out", str(out),
        "--json",
    ]) == 0
    printed = json.loads(capsys.readouterr().out)
    assert printed["schema"] == SCHEMA
    assert printed["benches"]["reveng"]["checks"]["fully_correct"] is True
