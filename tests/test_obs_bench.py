"""Unified bench suite tests: schema, gate logic, CLI round trip."""

import copy
import json

import pytest

from repro.cli import main
from repro.obs.bench import (
    SCHEMA,
    TRAJECTORY_SCHEMA,
    append_trajectory,
    check_payload,
    legacy_main,
    run_suite,
    trajectory_entry,
)
from repro.obs.registry import RunRegistry


@pytest.fixture(scope="module")
def reveng_payload():
    return run_suite("quick", only=["reveng"])


def _synthetic_payload():
    return {
        "schema": SCHEMA,
        "suite": "quick",
        "benches": {
            "fuzz": {
                "checks": {
                    "total_flips": 100,
                    "bit_identical": True,
                    "virtual_s": 40.0,
                },
                "timings": {"wall_s": 2.0, "speedup": 1.8},
            },
        },
    }


def test_run_suite_payload_schema(reveng_payload):
    payload = reveng_payload
    assert payload["schema"] == SCHEMA
    assert payload["suite"] == "quick"
    assert payload["scale"] == "QUICK"
    assert payload["git"]
    assert set(payload["benches"]) == {"reveng"}
    bench = payload["benches"]["reveng"]
    assert bench["checks"]["fully_correct"] is True
    assert bench["checks"]["measurements"] > 0
    assert bench["checks"]["virtual_s"] > 0
    assert bench["timings"]["wall_s"] > 0
    json.dumps(payload)  # JSON-ready


def test_run_suite_rejects_unknown_bench():
    with pytest.raises(ValueError, match="unknown bench"):
        run_suite("quick", only=["warp_drive"])


def test_check_payload_passes_against_itself(reveng_payload):
    assert check_payload(reveng_payload, reveng_payload) == []
    assert check_payload(
        reveng_payload, copy.deepcopy(reveng_payload), wall_threshold=0.30
    ) == []


def test_check_payload_flags_numeric_drift():
    baseline = _synthetic_payload()
    current = copy.deepcopy(baseline)
    current["benches"]["fuzz"]["checks"]["total_flips"] = 80  # -20%
    failures = check_payload(current, baseline)
    assert any("total_flips" in f for f in failures)
    # Within tolerance: 4% move passes at the default ±5%.
    current["benches"]["fuzz"]["checks"]["total_flips"] = 96
    assert check_payload(current, baseline) == []


def test_check_payload_flags_boolean_flip_and_missing_bench():
    baseline = _synthetic_payload()
    current = copy.deepcopy(baseline)
    current["benches"]["fuzz"]["checks"]["bit_identical"] = False
    failures = check_payload(current, baseline)
    assert any("bit_identical" in f for f in failures)

    empty = copy.deepcopy(baseline)
    empty["benches"] = {}
    failures = check_payload(empty, baseline)
    assert failures == ["fuzz: missing from current run"]


def test_check_payload_rejects_schema_and_suite_mismatch():
    baseline = _synthetic_payload()
    current = copy.deepcopy(baseline)

    stale = copy.deepcopy(baseline)
    stale["schema"] = "rhohammer-bench-all/v0"
    assert any("schema" in f for f in check_payload(current, stale))

    full = copy.deepcopy(baseline)
    full["suite"] = "full"
    assert any("suite mismatch" in f for f in check_payload(current, full))


def test_wall_timings_gate_only_when_asked():
    baseline = _synthetic_payload()
    current = copy.deepcopy(baseline)
    current["benches"]["fuzz"]["timings"]["wall_s"] = 4.0  # 2x slower

    assert check_payload(current, baseline) == []  # ungated by default
    failures = check_payload(current, baseline, wall_threshold=0.30)
    assert any("wall_s" in f and "slower" in f for f in failures)

    # Speedups never fail, and non-seconds timing keys are never gated.
    faster = copy.deepcopy(baseline)
    faster["benches"]["fuzz"]["timings"]["wall_s"] = 0.5
    faster["benches"]["fuzz"]["timings"]["speedup"] = 0.1
    assert check_payload(faster, baseline, wall_threshold=0.30) == []


def test_cli_bench_round_trip(tmp_path, capsys):
    out = tmp_path / "BENCH_all.json"
    assert main([
        "bench", "--quick", "--only", "reveng", "--out", str(out),
    ]) == 0
    capsys.readouterr()
    payload = json.loads(out.read_text())
    assert payload["schema"] == SCHEMA

    # Self-gate: fresh identical-seed run against the file just written.
    again = tmp_path / "again.json"
    assert main([
        "bench", "--quick", "--only", "reveng", "--out", str(again),
        "--check", "--baseline", str(out),
    ]) == 0
    assert "bench gate ok" in capsys.readouterr().out

    # Perturbed baseline: deterministic drift must fail the gate.
    payload["benches"]["reveng"]["checks"]["measurements"] *= 2
    bad = tmp_path / "bad-baseline.json"
    bad.write_text(json.dumps(payload))
    assert main([
        "bench", "--quick", "--only", "reveng", "--out", str(again),
        "--check", "--baseline", str(bad),
    ]) == 1
    assert "bench gate FAILED" in capsys.readouterr().out

    # No baseline at all is its own, distinct error.
    assert main([
        "bench", "--quick", "--only", "reveng", "--out", str(again),
        "--check", "--baseline", str(tmp_path / "missing.json"),
    ]) == 2


def test_bench_json_output(tmp_path, capsys):
    out = tmp_path / "BENCH_all.json"
    assert main([
        "bench", "--quick", "--only", "reveng", "--out", str(out),
        "--json",
    ]) == 0
    printed = json.loads(capsys.readouterr().out)
    assert printed["schema"] == SCHEMA
    assert printed["benches"]["reveng"]["checks"]["fully_correct"] is True


def _full_payload():
    payload = _synthetic_payload()
    payload.update({
        "scale": "QUICK", "git": "abc1234",
        "wall": {"recorded": "2026-01-01T00:00:00+0000", "host": "ci"},
    })
    return payload


def test_trajectory_entry_keeps_numeric_timings_only():
    payload = _full_payload()
    payload["benches"]["fuzz"]["timings"]["converged"] = True
    entry = trajectory_entry(payload)
    assert entry == {
        "git": "abc1234", "recorded": "2026-01-01T00:00:00+0000",
        "suite": "quick", "scale": "QUICK", "host": "ci",
        "timings": {"fuzz.wall_s": 2.0, "fuzz.speedup": 1.8},
    }


def test_append_trajectory_one_line_per_entry(tmp_path):
    traj = tmp_path / "BENCH_trajectory.json"
    append_trajectory(_full_payload(), traj)
    append_trajectory(_full_payload(), traj)
    loaded = json.loads(traj.read_text())
    assert loaded["schema"] == TRAJECTORY_SCHEMA
    assert len(loaded["entries"]) == 2
    # diff-friendly: exactly one line per entry
    entry_lines = [
        line for line in traj.read_text().splitlines()
        if '"git"' in line
    ]
    assert len(entry_lines) == 2

    # a foreign-schema file is restarted, not corrupted further
    traj.write_text('{"schema": "something/else", "entries": [1, 2, 3]}')
    append_trajectory(_full_payload(), traj)
    loaded = json.loads(traj.read_text())
    assert loaded["schema"] == TRAJECTORY_SCHEMA
    assert len(loaded["entries"]) == 1


def test_cli_bench_registry_and_trajectory_wiring(
    tmp_path, capsys, monkeypatch
):
    import repro.obs.bench as bench_mod

    monkeypatch.setattr(
        bench_mod, "run_suite", lambda suite, only=None, progress=None:
        _full_payload()
    )
    out = tmp_path / "results" / "BENCH_all.json"
    db = tmp_path / "bench-registry.sqlite"
    traj = tmp_path / "traj.json"
    assert main([
        "bench", "--quick", "--out", str(out),
        "--registry", str(db), "--trajectory", str(traj),
    ]) == 0
    printed = capsys.readouterr().out
    assert "registry: recorded run #1" in printed
    assert "trajectory: appended entry" in printed
    with RunRegistry(db) as reg:
        records = reg.runs(kind="bench")
        assert len(records) == 1
        assert records[0].suite == "quick"
        samples = reg.samples_for(records[0].run_id)
        assert samples["bench.fuzz.checks.total_flips"] == 100.0
    assert len(json.loads(traj.read_text())["entries"]) == 1
    # default (no --registry): a registry.sqlite lands next to the results
    assert main(["bench", "--quick", "--out", str(out)]) == 0
    capsys.readouterr()
    assert (out.parent / "registry.sqlite").is_file()
    # and 'none' disables both explicitly
    clean = tmp_path / "clean" / "BENCH_all.json"
    assert main([
        "bench", "--quick", "--out", str(clean), "--registry", "none",
    ]) == 0
    capsys.readouterr()
    assert not (clean.parent / "registry.sqlite").exists()


def test_legacy_main_delegates_to_the_suite(tmp_path, capsys, monkeypatch):
    import repro.obs.bench as bench_mod

    seen = {}

    def fake_run_suite(suite, only=None, progress=None):
        seen["suite"], seen["only"] = suite, only
        payload = _full_payload()
        payload["benches"] = {"engine": payload["benches"].pop("fuzz")}
        return payload

    monkeypatch.setattr(bench_mod, "run_suite", fake_run_suite)
    results = tmp_path / "BENCH_engine.json"
    assert legacy_main("engine", results, argv=["--quick"]) == 0
    assert seen == {"suite": "quick", "only": ["engine"]}
    printed = capsys.readouterr().out
    assert "superseded by" in printed
    assert "bench_all.py --only engine" in printed
    payload = json.loads(results.read_text())
    assert payload["schema"] == SCHEMA
    assert set(payload["benches"]) == {"engine"}
