"""NOP pseudo-barrier tuning (Figure 10)."""

import pytest

from repro import QUICK_SCALE, rhohammer_config
from repro.exploit.endtoend import canonical_compact_pattern
from repro.hammer.nops import tune_nop_count


@pytest.fixture(scope="module")
def raptor_tuning(raptor_machine):
    return tune_nop_count(
        raptor_machine,
        rhohammer_config(nop_count=0, num_banks=3),
        canonical_compact_pattern(),
        base_rows=[4096, 20000],
        activations_per_row=QUICK_SCALE.acts_per_pattern,
        nop_grid=(0, 50, 150, 250, 500, 1000),
        scale=QUICK_SCALE,
    )


def test_figure10_shape(raptor_tuning):
    """Zero flips at both extremes, a positive band in between."""
    flips = raptor_tuning.flips_by_count
    assert flips[0] == 0  # too few NOPs: OoO disorder wins
    assert flips[1000] == 0  # too many: activation rate collapses
    assert raptor_tuning.best_flips > 0
    assert 0 < raptor_tuning.best_nop_count < 1000


def test_positive_range_is_intermediate(raptor_tuning):
    band = raptor_tuning.positive_range
    assert band is not None
    low, high = band
    assert low > 0
    assert high < 1000


def test_time_grows_with_nops(raptor_tuning):
    times = raptor_tuning.times_ms_by_count
    assert times[1000] > times[0]


def test_grid_fully_evaluated(raptor_tuning):
    assert set(raptor_tuning.flips_by_count) == {0, 50, 150, 250, 500, 1000}


def test_no_flips_reports_none_band(comet_machine):
    result = tune_nop_count(
        comet_machine,
        rhohammer_config(nop_count=0, num_banks=3),
        canonical_compact_pattern(),
        base_rows=[4096],
        activations_per_row=2_000,  # far too short to flip anything
        nop_grid=(0, 100),
        scale=None,
    )
    assert result.best_flips == 0
    assert result.positive_range is None
