"""Generated kernel source: structural properties."""

import pytest

from repro.cpu.isa import (
    AddressingMode,
    Barrier,
    HammerInstruction,
    HammerKernelConfig,
    baseline_load_config,
    rhohammer_config,
)
from repro.exploit.endtoend import canonical_compact_pattern
from repro.hammer.codegen import emit_asm, emit_cpp, instruction_estimate


@pytest.fixture(scope="module")
def pattern():
    return canonical_compact_pattern()


def test_cpp_kernel_contains_listing1_shape(pattern):
    source = emit_cpp(baseline_load_config(), pattern)
    assert "for (int idx = 0; idx < num_of_act; idx++)" in source
    assert "aggr_row_addrs[idx]" in source
    assert "_mm_clflushopt" in source
    assert "_mm_prefetch" not in source


def test_cpp_prefetch_uses_the_hint(pattern):
    config = rhohammer_config(nop_count=220, num_banks=3)
    source = emit_cpp(config, pattern)
    assert "_MM_HINT_T2" in source
    assert "_rdrand64_step" in source  # obfuscation skeleton
    assert ".rept 220" in source  # NOP pseudo-barrier


def test_cpp_barriers_render(pattern):
    lfence = emit_cpp(HammerKernelConfig(barrier=Barrier.LFENCE), pattern)
    cpuid = emit_cpp(HammerKernelConfig(barrier=Barrier.CPUID), pattern)
    assert "_mm_lfence" in lfence
    assert "cpuid" in cpuid


def test_asm_requires_immediate_addressing(pattern):
    with pytest.raises(ValueError):
        emit_asm(HammerKernelConfig(addressing=AddressingMode.INDEXED), pattern)


def test_asm_unrolls_each_slot(pattern):
    config = HammerKernelConfig(
        addressing=AddressingMode.IMMEDIATE,
        instruction=HammerInstruction.PREFETCHT2,
    )
    source = emit_asm(config, pattern, unroll_slots=16)
    assert source.count("prefetcht2 byte ptr") == 16
    assert source.count("clflushopt") == 16
    # Immediate addresses, no register indirection through an index.
    assert "[idx]" not in source
    assert "0x2" in source


def test_asm_groups_follow_pattern_order(pattern):
    config = HammerKernelConfig(
        addressing=AddressingMode.IMMEDIATE,
        instruction=HammerInstruction.PREFETCHT2,
    )
    source = emit_asm(config, pattern, unroll_slots=4)
    expected = pattern.slots[:4].tolist()
    seen = [
        int(line.split("aggressor")[1])
        for line in source.splitlines()
        if "; slot" in line
    ]
    assert seen == expected


def test_instruction_estimate_accounts_everything(pattern):
    config = rhohammer_config(nop_count=100, num_banks=3)
    counts = instruction_estimate(config, pattern)
    slots = pattern.base_period
    assert counts["hammer"] == counts["clflushopt"] == slots
    assert counts["nop"] == 100 * slots
    assert counts["barrier"] == 0
    assert counts["obfuscation"] == 4 * slots
    assert counts["total"] == sum(
        v for k, v in counts.items() if k != "total"
    )
