"""Buddy allocator: splitting, coalescing, exhaustion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.common.rng import RngStream
from repro.osmodel.buddy import MAX_ORDER, BuddyAllocator
from repro.osmodel.memory import PhysicalMemory


def make_allocator(gib=8) -> BuddyAllocator:
    return BuddyAllocator(PhysicalMemory.from_gib(gib), RngStream(31, "buddy"))


def test_block_geometry():
    allocator = make_allocator()
    block = allocator.allocate(MAX_ORDER)
    assert block.num_frames == 1024
    assert block.size_bytes == 4 << 20
    assert block.first_frame % block.num_frames == 0  # order-aligned


def test_small_allocation_splits_larger_block():
    allocator = make_allocator()
    assert allocator.free_blocks_of_order(0) == 0
    allocator.allocate(0)
    # Splitting a max-order block leaves one buddy at every lower order.
    for order in range(MAX_ORDER):
        assert allocator.free_blocks_of_order(order) == 1


def test_free_pages_accounting():
    allocator = make_allocator()
    before = allocator.free_pages()
    block = allocator.allocate(4)
    assert allocator.free_pages() == before - 16
    allocator.free(block)
    assert allocator.free_pages() == before


def test_free_coalesces_back_to_max_order():
    allocator = make_allocator()
    top_before = allocator.free_blocks_of_order(MAX_ORDER)
    block = allocator.allocate(0)
    allocator.free(block)
    assert allocator.free_blocks_of_order(MAX_ORDER) == top_before
    for order in range(MAX_ORDER):
        assert allocator.free_blocks_of_order(order) == 0


def test_double_free_rejected():
    allocator = make_allocator()
    block = allocator.allocate(2)
    allocator.free(block)
    with pytest.raises(SimulationError):
        allocator.free(block)


def test_order_out_of_range():
    allocator = make_allocator()
    with pytest.raises(SimulationError):
        allocator.allocate(MAX_ORDER + 1)


def test_exhaust_small_orders_forces_contiguity():
    allocator = make_allocator()
    allocator.exhaust_small_orders()
    for order in range(MAX_ORDER):
        assert allocator.free_blocks_of_order(order) == 0
    # Any further request must carve a fresh max-order block.
    block = allocator.allocate_contiguous_4mib()
    assert block.order == MAX_ORDER


def test_allocator_exhaustion_raises_memory_error():
    allocator = make_allocator()
    while True:
        try:
            allocator.allocate(MAX_ORDER)
        except MemoryError:
            break
    with pytest.raises(MemoryError):
        allocator.allocate(0)


@settings(max_examples=20, deadline=None)
@given(orders=st.lists(st.integers(min_value=0, max_value=MAX_ORDER),
                       min_size=1, max_size=40))
def test_allocated_blocks_never_overlap(orders):
    allocator = make_allocator()
    taken: set[int] = set()
    blocks = []
    for order in orders:
        block = allocator.allocate(order)
        frames = set(block.frames())
        assert not frames & taken
        taken |= frames
        blocks.append(block)
    total_before = allocator.free_pages()
    for block in blocks:
        allocator.free(block)
    assert allocator.free_pages() == total_before + len(taken)
