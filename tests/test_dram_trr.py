"""TRR sampler dynamics and pTRR."""

import numpy as np

from repro.common.rng import RngStream
from repro.dram.trr import PtrrShield, TrrConfig, TrrSampler


def make_sampler(**kwargs) -> TrrSampler:
    config = TrrConfig(**{**dict(sample_prob=1.0), **kwargs})
    return TrrSampler(config=config, rng=RngStream(1, "trr"))


def test_top_count_rows_are_refreshed():
    sampler = make_sampler(capacity=6, refreshes_per_ref=2)
    stream = np.array([10] * 8 + [20] * 7 + [30] * 2 + [40] * 1)
    sampler.observe(stream)
    targets = sampler.on_ref()
    assert set(targets) == {10, 20}


def test_capacity_shields_late_rows():
    sampler = make_sampler(capacity=3, refreshes_per_ref=3)
    # Three early rows fill the table; the late row is never tracked.
    early = np.array([1, 2, 3] * 5)
    late = np.array([99] * 10)
    sampler.observe(np.concatenate([early, late]))
    assert 99 not in sampler._counts
    assert set(sampler.on_ref()) <= {1, 2, 3}


def test_refreshed_entries_are_cleared():
    sampler = make_sampler(capacity=4, refreshes_per_ref=1, flush_every_refs=100)
    sampler.observe(np.array([5] * 10 + [6] * 3))
    assert sampler.on_ref() == [5]
    assert 5 not in sampler._counts
    assert 6 in sampler._counts


def test_flush_clears_table_without_refreshing():
    sampler = make_sampler(capacity=6, refreshes_per_ref=1, flush_every_refs=2)
    sampler.observe(np.array([1] * 5 + [2] * 4 + [3] * 3))
    sampler.on_ref()  # pops row 1, counts 2 and 3 linger
    assert 3 in sampler._counts
    sampler.on_ref()  # second REF triggers the flush
    assert sampler._counts == {}


def test_sampling_probability_thins_observations():
    full = make_sampler(capacity=100, sample_prob=1.0)
    thinned = make_sampler(capacity=100, sample_prob=0.3)
    stream = np.arange(1000) % 50
    full.observe(stream)
    thinned.observe(stream)
    assert sum(thinned._counts.values()) < sum(full._counts.values())


def test_empty_observation_is_noop():
    sampler = make_sampler()
    sampler.observe(np.array([], dtype=np.int64))
    assert sampler.on_ref() == []


def test_reset():
    sampler = make_sampler()
    sampler.observe(np.array([1, 1, 2]))
    sampler.reset()
    assert sampler.on_ref() == []


def test_scaled_config():
    config = TrrConfig(capacity=6, sample_prob=0.8, refreshes_per_ref=2)
    strong = config.scaled(2.0)
    assert strong.capacity == 12
    assert strong.sample_prob == 1.0
    assert strong.refreshes_per_ref == 4
    weak = config.scaled(0.5)
    assert weak.capacity == 3


def test_ptrr_disabled_never_triggers():
    shield = PtrrShield(enabled=False)
    mask = shield.refresh_mask(1000, RngStream(2))
    assert not mask.any()


def test_ptrr_enabled_triggers_at_rate():
    shield = PtrrShield(enabled=True, para_prob=0.05)
    mask = shield.refresh_mask(20_000, RngStream(3))
    rate = mask.mean()
    assert 0.03 < rate < 0.07


# ----------------------------------------------------------------------
# Vendor profiles
# ----------------------------------------------------------------------
def test_vendor_profiles_cover_the_three_manufacturers():
    from repro.dram.trr import VENDOR_TRR_PROFILES

    assert set(VENDOR_TRR_PROFILES) == {"S", "H", "M"}
    for config in VENDOR_TRR_PROFILES.values():
        assert config.capacity >= 1
        assert 0 < config.sample_prob <= 1


def test_vendor_profiles_differ_in_overflow_resistance():
    """An H-style sampler (small table) is overflowed by many-sided
    patterns that an M-style sampler (large table) still tracks."""
    import numpy as np

    from repro.dram.trr import VENDOR_TRR_PROFILES, TrrSampler

    stream = np.tile(np.arange(10), 40)  # 10 distinct aggressors
    h_sampler = TrrSampler(VENDOR_TRR_PROFILES["H"], RngStream(71, "h"))
    m_sampler = TrrSampler(VENDOR_TRR_PROFILES["M"], RngStream(72, "m"))
    h_sampler.observe(stream)
    m_sampler.observe(stream)
    assert len(h_sampler._counts) <= 4
    assert len(m_sampler._counts) >= 9
