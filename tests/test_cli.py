"""CLI smoke tests (in-process, quick scale)."""

import pytest

from repro.cli import build_parser, main


def test_parser_has_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("reveng", "fuzz", "sweep", "exploit", "tune", "campaign",
                    "emit", "inspect", "analyze", "compare", "bench"):
        assert command in text


def test_requires_a_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_reveng_command(capsys):
    code = main(["reveng", "--platform", "raptor_lake", "--dimm", "S3",
                 "--fraction", "0.4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "correct: True" in out


def test_fuzz_command(capsys):
    code = main(["fuzz", "--platform", "comet_lake", "--dimm", "S3",
                 "--patterns", "6"])
    out = capsys.readouterr().out
    assert code == 0
    assert "total flips" in out


def test_fuzz_baseline_flag(capsys):
    code = main(["fuzz", "--platform", "raptor_lake", "--patterns", "3",
                 "--baseline"])
    out = capsys.readouterr().out
    assert code == 0
    assert "mov" in out  # the load kernel is reported


def test_sweep_command(capsys):
    code = main(["sweep", "--platform", "comet_lake", "--locations", "6"])
    out = capsys.readouterr().out
    assert code == 0
    assert "flips per minute" in out


def test_exploit_command(capsys):
    code = main(["exploit", "--platform", "raptor_lake"])
    out = capsys.readouterr().out
    assert code == 0
    assert "page-table read/write achieved" in out


def test_tune_command(capsys):
    code = main(["tune", "--platform", "raptor_lake"])
    out = capsys.readouterr().out
    assert code == 0
    assert "optimal count" in out


def test_emit_cpp(capsys):
    code = main(["emit", "--platform", "raptor_lake", "--format", "cpp"])
    out = capsys.readouterr().out
    assert code == 0
    assert "_mm_clflushopt" in out


def test_emit_asm(capsys):
    code = main(["emit", "--platform", "raptor_lake", "--format", "asm",
                 "--slots", "8"])
    out = capsys.readouterr().out
    assert code == 0
    assert out.count("clflushopt byte ptr") == 8


def test_campaign_command(capsys):
    code = main(["campaign", "--platform", "comet_lake", "--patterns", "6",
                 "--locations", "4", "--no-exploit"])
    out = capsys.readouterr().out
    assert code == 0
    assert "campaign succeeded: True" in out


def test_invalid_platform_rejected():
    with pytest.raises(SystemExit):
        main(["fuzz", "--platform", "meteor_lake"])


def test_workers_flag_accepted(capsys):
    code = main(["fuzz", "--platform", "comet_lake", "--dimm", "S3",
                 "--patterns", "4", "--workers", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "total flips" in out


def test_tuned_config_comes_from_calibration_table():
    """Regression: the CLI's per-platform kernels must match the shared
    calibration table (rocket_lake used to be hardcoded to 60 NOPs)."""
    from repro.cli import _tuned_config
    from repro.system.calibration import tuned_settings

    class _Args:
        platform = "rocket_lake"

    config = _tuned_config(_Args(), None)
    assert config.nop_count == tuned_settings("rocket_lake").nop_count == 80
