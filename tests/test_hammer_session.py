"""The hammer session: full pattern -> flips pipeline."""

import pytest

from repro import QUICK_SCALE, build_machine, rhohammer_config
from repro.hammer.session import HammerSession
from repro.exploit.endtoend import canonical_compact_pattern


@pytest.fixture(scope="module")
def comet_session(comet_machine):
    return HammerSession(
        machine=comet_machine,
        config=rhohammer_config(nop_count=60, num_banks=3),
        disturbance_gain=QUICK_SCALE.disturbance_gain,
    )


def test_effective_pattern_produces_flips(comet_session):
    outcome = comet_session.run_pattern(
        canonical_compact_pattern(), 6000,
        activations=QUICK_SCALE.acts_per_pattern,
    )
    assert outcome.flip_count > 0
    assert outcome.cache_miss_rate > 0.9
    assert outcome.acts_executed > 0
    assert outcome.duration_ns > 0


def test_collect_events_returns_locations(comet_session):
    outcome = comet_session.run_pattern(
        canonical_compact_pattern(), 6000,
        activations=QUICK_SCALE.acts_per_pattern,
        collect_events=True,
    )
    assert len(outcome.flips) == outcome.flip_count > 0
    victim_rows = {f.row for f in outcome.flips}
    # Victims sit inside the pattern's row span around the base row.
    assert all(6000 <= row <= 6000 + 12 for row in victim_rows)
    assert {f.bank for f in outcome.flips} <= {0, 1, 2}


def test_bank_override(comet_session):
    outcome = comet_session.run_pattern(
        canonical_compact_pattern(), 6000,
        activations=QUICK_SCALE.acts_per_pattern,
        banks=(8, 9, 10),
        collect_events=True,
    )
    assert {f.bank for f in outcome.flips} <= {8, 9, 10}


def test_same_location_reproduces_flip_count(comet_session):
    """Vulnerability is location-determined (Orosa et al.): repeating the
    identical run at the same base row flips the same cells."""
    a = comet_session.run_pattern(
        canonical_compact_pattern(), 7000,
        activations=QUICK_SCALE.acts_per_pattern,
    )
    b = comet_session.run_pattern(
        canonical_compact_pattern(), 7000,
        activations=QUICK_SCALE.acts_per_pattern,
    )
    assert abs(a.flip_count - b.flip_count) <= max(3, a.flip_count // 5)


def test_invulnerable_dimm_never_flips():
    machine = build_machine("comet_lake", "M1", scale=QUICK_SCALE)
    session = HammerSession(
        machine=machine,
        config=rhohammer_config(nop_count=60, num_banks=3),
        disturbance_gain=QUICK_SCALE.disturbance_gain,
    )
    outcome = session.run_pattern(
        canonical_compact_pattern(), 6000,
        activations=QUICK_SCALE.acts_per_pattern,
    )
    assert outcome.flip_count == 0


def test_activation_rate_property(comet_session):
    outcome = comet_session.run_pattern(
        canonical_compact_pattern(), 6000,
        activations=QUICK_SCALE.acts_per_pattern,
    )
    expected = outcome.acts_executed / (outcome.duration_ns * 1e-9)
    assert outcome.activation_rate_per_sec == pytest.approx(expected)
