"""PhaseProfiler tests: claiming, passthrough, merging, CLI --profile."""

import json

from repro import QUICK_SCALE, FuzzingCampaign, RunBudget, build_machine
from repro.cli import main
from repro.hammer.nops import tuned_config_for
from repro.obs import OBS, PhaseProfiler, format_profile, telemetry_session


def _busy(n=2000):
    return sum(i * i for i in range(n))


def test_first_real_span_claims_the_profiler():
    profiler = PhaseProfiler()
    with telemetry_session(trace_memory=True) as obs:
        obs.tracer.profiler = profiler
        with obs.tracer.span("cli.fuzz"):  # passthrough wrapper
            with obs.tracer.span("fuzz.campaign"):  # claims the profiler
                with obs.tracer.span("hammer.pattern"):  # nested: inside it
                    _busy()
            with obs.tracer.span("sweep.run"):  # idle again: claims too
                _busy()
    assert profiler.phases == ("fuzz.campaign", "sweep.run")
    report = profiler.report()
    assert report["schema"] == "rhohammer-profile/v1"
    campaign = report["phases"]["fuzz.campaign"]
    assert campaign["spans"] == 1
    assert campaign["hotspots"], "profiled phase must have hotspot rows"
    functions = " ".join(r["function"] for r in campaign["hotspots"])
    assert "_busy" in functions


def test_same_phase_spans_merge():
    profiler = PhaseProfiler()
    with telemetry_session(trace_memory=True) as obs:
        obs.tracer.profiler = profiler
        for _ in range(3):
            with obs.tracer.span("pool.task"):
                _busy()
    report = profiler.report()
    assert report["phases"]["pool.task"]["spans"] == 3


def test_campaign_run_is_passthrough():
    profiler = PhaseProfiler()
    with telemetry_session(trace_memory=True) as obs:
        obs.tracer.profiler = profiler
        with obs.tracer.span("campaign.run"):
            with obs.tracer.span("campaign.fuzz"):
                _busy()
    assert profiler.phases == ("campaign.fuzz",)


def test_profile_session_over_a_real_campaign():
    machine = build_machine("comet_lake", "S3", scale=QUICK_SCALE, seed=31)
    config = tuned_config_for("comet_lake")
    with telemetry_session(profile=True) as obs:
        FuzzingCampaign(
            machine=machine, config=config, scale=QUICK_SCALE
        ).execute(RunBudget(max_trials=2))
        profiler = obs.tracer.profiler
        assert profiler is not None
        report = profiler.report()
    assert "fuzz.campaign" in report["phases"]
    text = format_profile(report)
    assert "fuzz.campaign" in text
    assert not OBS.enabled  # session restored the disabled state
    assert OBS.tracer.profiler is None


def test_cli_profile_writes_report(tmp_path, capsys):
    profile_path = tmp_path / "profile.json"
    assert main([
        "fuzz", "--platform", "comet_lake", "--patterns", "3",
        "--profile", str(profile_path),
    ]) == 0
    capsys.readouterr()
    report = json.loads(profile_path.read_text())
    assert report["schema"] == "rhohammer-profile/v1"
    assert "fuzz.campaign" in report["phases"]
    assert all(
        not name.startswith("cli.") for name in report["phases"]
    ), "wrapper spans must not swallow the per-phase breakdown"
    top = report["phases"]["fuzz.campaign"]["hotspots"][0]
    assert {"function", "ncalls", "tottime_s", "cumtime_s"} <= set(top)
