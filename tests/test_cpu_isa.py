"""ISA definitions and kernel configuration."""

import pytest

from repro.common.errors import SimulationError
from repro.cpu.isa import (
    AddressingMode,
    Barrier,
    HammerInstruction,
    HammerKernelConfig,
    baseline_load_config,
    rhohammer_config,
)


def test_prefetch_classification():
    assert not HammerInstruction.LOAD.is_prefetch
    for instr in (
        HammerInstruction.PREFETCHT0,
        HammerInstruction.PREFETCHT1,
        HammerInstruction.PREFETCHT2,
        HammerInstruction.PREFETCHNTA,
    ):
        assert instr.is_prefetch


def test_cache_levels_by_hint():
    assert HammerInstruction.PREFETCHT0.cache_levels_filled == 3
    assert HammerInstruction.PREFETCHT1.cache_levels_filled == 2
    assert HammerInstruction.PREFETCHT2.cache_levels_filled == 1
    assert HammerInstruction.PREFETCHNTA.cache_levels_filled == 1


def test_config_rejects_negative_nops():
    with pytest.raises(SimulationError):
        HammerKernelConfig(nop_count=-1)


def test_config_rejects_zero_banks():
    with pytest.raises(SimulationError):
        HammerKernelConfig(num_banks=0)


def test_uops_include_nops():
    config = HammerKernelConfig(nop_count=10)
    assert config.uops_per_iteration == HammerKernelConfig().uops_per_iteration + 10


def test_with_banks_and_with_nops_are_functional():
    config = HammerKernelConfig()
    banked = config.with_banks(4)
    nopped = config.with_nops(100)
    assert config.num_banks == 1 and config.nop_count == 0
    assert banked.num_banks == 4
    assert nopped.nop_count == 100


def test_describe_mentions_settings():
    config = rhohammer_config(nop_count=220, num_banks=3)
    text = config.describe()
    assert "nops=220" in text
    assert "banks=3" in text
    assert "obfuscated" in text


def test_baseline_is_fence_free_load():
    config = baseline_load_config()
    assert config.instruction is HammerInstruction.LOAD
    assert config.barrier is Barrier.NONE
    assert not config.obfuscate_control_flow
    assert config.addressing is AddressingMode.INDEXED


def test_rhohammer_uses_prefetch_and_obfuscation():
    config = rhohammer_config(nop_count=100)
    assert config.instruction.is_prefetch
    assert config.obfuscate_control_flow
    assert config.nop_count == 100
