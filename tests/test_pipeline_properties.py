"""Property-based invariants across the hammer pipeline (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import RngStream
from repro.cpu.executor import HammerExecutor
from repro.cpu.isa import (
    AddressingMode,
    Barrier,
    HammerInstruction,
    HammerKernelConfig,
)
from repro.cpu.platform import PLATFORMS, platform_by_name
from repro.cpu.speculation import DisorderModel


config_strategy = st.builds(
    HammerKernelConfig,
    instruction=st.sampled_from(list(HammerInstruction)),
    addressing=st.sampled_from(list(AddressingMode)),
    barrier=st.sampled_from(list(Barrier)),
    nop_count=st.integers(min_value=0, max_value=1000),
    obfuscate_control_flow=st.booleans(),
    num_banks=st.integers(min_value=1, max_value=8),
)


@settings(max_examples=60, deadline=None)
@given(config=config_strategy, platform=st.sampled_from(sorted(PLATFORMS)))
def test_executor_invariants(config, platform):
    """For any kernel configuration on any platform:

    * survivors are a subset of issued accesses,
    * the realised miss rate equals survivors/issued,
    * issue times are sorted, positive, and within the run duration,
    * surviving ids come from the input id set.
    """
    executor = HammerExecutor(
        platform_by_name(platform), rng=RngStream(99, platform)
    )
    ids = np.tile(np.arange(6), 400)
    result = executor.execute(ids, config)
    assert 0 <= result.survivors <= result.issued == ids.size
    assert result.miss_rate == pytest.approx(result.survivors / ids.size)
    if result.survivors:
        assert (np.diff(result.times_ns) >= 0).all()
        assert result.times_ns.min() > 0
        assert result.times_ns.max() <= result.duration_ns + 1e-6
        assert set(result.address_ids.tolist()) <= set(range(6))


@settings(max_examples=60, deadline=None)
@given(config=config_strategy, platform=st.sampled_from(sorted(PLATFORMS)))
def test_disorder_profile_invariants(config, platform):
    """Windows and drop caps stay in their physical ranges."""
    model = DisorderModel(platform_by_name(platform))
    profile = model.profile(config)
    assert profile.window >= 0.0
    assert 0.0 < profile.drop_cap < 1.0
    d = np.array([1, 5, 50, 500, 10**9])
    p = model.drop_probabilities(d, profile)
    assert (p >= 0).all() and (p <= profile.drop_cap).all()
    assert (np.diff(p) <= 1e-12).all()  # monotone non-increasing


@settings(max_examples=40, deadline=None)
@given(
    nops_lo=st.integers(min_value=0, max_value=400),
    extra=st.integers(min_value=1, max_value=600),
    platform=st.sampled_from(sorted(PLATFORMS)),
)
def test_more_nops_never_widen_the_window(nops_lo, extra, platform):
    model = DisorderModel(platform_by_name(platform))
    low = model.profile(HammerKernelConfig(nop_count=nops_lo))
    high = model.profile(HammerKernelConfig(nop_count=nops_lo + extra))
    assert high.window <= low.window + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    config=config_strategy,
    platform=st.sampled_from(sorted(PLATFORMS)),
    miss=st.floats(min_value=0.0, max_value=1.0),
)
def test_throughput_cost_is_positive_and_monotone_in_miss(config, platform, miss):
    from repro.cpu.timing import ThroughputModel

    model = ThroughputModel(platform_by_name(platform))
    cost = model.iteration_cost(config, miss_rate=miss)
    assert cost.total_ns > 0
    fuller = model.iteration_cost(config, miss_rate=min(1.0, miss + 0.1))
    assert fuller.total_ns >= cost.total_ns - 1e-9
