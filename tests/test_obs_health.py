"""Fleet health telemetry: sampling, events, alert rules, status/top.

The determinism contract extends to the health layer: health and alert
records are id-free and live entirely under ``wall``, structural event
counts are deterministic for a fixed configuration, and post-hoc alert
evaluation over a finished trace is a pure function — the basis of the
``analyze --alerts`` CI gate.
"""

import json
import os

import pytest

from repro.cli import main
from repro.obs import (
    OBS,
    AlertEngine,
    AlertRule,
    AlertRuleError,
    FleetState,
    HealthFollower,
    ResourceSampler,
    evaluate_records,
    load_rules,
    read_trace,
    sample_process,
    strip_wall,
    summarize_health,
    telemetry_session,
)
from repro.obs.alerts import parse_duration, parse_value
from repro.obs.export import openmetrics_text
from repro.obs.health import flatten_health, format_bytes


# ----------------------------------------------------------------------
# Resource sampling
# ----------------------------------------------------------------------
def test_sample_process_reads_self():
    sample = sample_process()
    assert sample is not None
    assert sample["pid"] == os.getpid()
    assert sample["cpu_s"] >= 0.0
    assert sample["rss_bytes"] > 0


def test_sample_process_returns_none_for_dead_pid():
    # Fork a child that exits immediately; after waitpid its /proc entry
    # is gone and sampling must report None, not fabricate numbers.
    pid = os.fork()
    if pid == 0:
        os._exit(0)
    os.waitpid(pid, 0)
    assert sample_process(pid) is None


def test_resource_sampler_rate_limits_and_orders_payloads():
    now = [0.0]
    sampler = ResourceSampler(interval_s=1.0, clock=lambda: now[0])
    assert sampler.tick() == []  # interval not yet elapsed
    now[0] = 1.5
    sampler.update_pool(pids=[os.getpid()], tasks=8, done=3)
    sampler.update_pool(queue_depth=2)  # stats merge, pids persist
    payloads = sampler.tick()
    kinds = [(p["kind"], p.get("role")) for p in payloads]
    assert kinds[0] == ("sample", "parent")
    assert kinds[1] == ("sample", "worker")
    assert payloads[1]["worker"] == 0
    pool = payloads[-1]
    assert pool["kind"] == "pool"
    assert pool["tasks"] == 8 and pool["done"] == 3
    assert pool["queue_depth"] == 2
    assert sampler.tick() == []  # re-armed: rate limited again
    assert sampler.samples_emitted == len(payloads)


def test_resource_sampler_rejects_non_positive_interval():
    with pytest.raises(ValueError):
        ResourceSampler(interval_s=0.0)


def test_format_bytes_human_units():
    assert format_bytes(512) == "512B"
    assert format_bytes(2048) == "2.0K"
    assert format_bytes(3 * 1024**3) == "3.0G"


# ----------------------------------------------------------------------
# Alert rule parsing
# ----------------------------------------------------------------------
def test_parse_value_binary_suffixes():
    assert parse_value(42) == 42.0
    assert parse_value("2K") == 2048.0
    assert parse_value("1.5G") == 1.5 * 1024**3
    assert parse_value("3MiB") == 3 * 1024**2
    assert parse_value("0.25") == 0.25
    with pytest.raises(AlertRuleError):
        parse_value("lots")


def test_parse_duration_units():
    assert parse_duration(30) == 30.0
    assert parse_duration("30s") == 30.0
    assert parse_duration("5m") == 300.0
    assert parse_duration("250ms") == 0.25
    with pytest.raises(AlertRuleError):
        parse_duration("soon")


def test_rule_from_dict_kinds_and_validation():
    threshold = AlertRule.from_dict(
        {"name": "rss-cap", "expr": "rss_bytes > 2G"}
    )
    assert threshold.kind == "threshold"
    assert threshold.metric == "rss_bytes"
    assert threshold.value == 2 * 1024**3
    assert threshold.describe() == "rss_bytes > 2.14748e+09"

    rate = AlertRule.from_dict(
        {"name": "stall", "expr": "done < 0.5", "window": "10s"}
    )
    assert rate.kind == "rate" and rate.window_s == 10.0

    absence = AlertRule.from_dict(
        {"name": "quiet", "absent": "heartbeat", "for": "1m"}
    )
    assert absence.kind == "absence" and absence.window_s == 60.0

    with pytest.raises(AlertRuleError):
        AlertRule.from_dict({"expr": "x > 1"})  # no name
    with pytest.raises(AlertRuleError):
        AlertRule.from_dict({"name": "bad", "expr": "x >"})
    with pytest.raises(AlertRuleError):
        AlertRule.from_dict({"name": "bad", "expr": "x > 1",
                             "severity": "shrug"})
    with pytest.raises(AlertRuleError):
        AlertRule.from_dict({"name": "bad"})  # neither expr nor absent


def test_load_rules_json_and_toml(tmp_path):
    rules_json = tmp_path / "rules.json"
    rules_json.write_text(json.dumps({"rules": [
        {"name": "rss", "expr": "rss_bytes > 1G"},
        {"name": "deaths", "expr": "worker_deaths >= 1",
         "severity": "critical"},
    ]}))
    loaded = load_rules(rules_json)
    assert [r.name for r in loaded] == ["rss", "deaths"]
    assert loaded[1].severity == "critical"

    rules_toml = tmp_path / "rules.toml"
    rules_toml.write_text(
        '[[rules]]\nname = "rss"\nexpr = "rss_bytes > 1G"\n'
    )
    assert load_rules(rules_toml)[0].metric == "rss_bytes"

    dup = tmp_path / "dup.json"
    dup.write_text(json.dumps([{"name": "a", "expr": "x > 1"},
                               {"name": "a", "expr": "y > 1"}]))
    with pytest.raises(AlertRuleError, match="duplicate"):
        load_rules(dup)

    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(AlertRuleError, match="invalid JSON"):
        load_rules(bad)
    with pytest.raises(AlertRuleError, match="cannot read"):
        load_rules(tmp_path / "missing.json")


# ----------------------------------------------------------------------
# Alert evaluation
# ----------------------------------------------------------------------
def _health(t, **wall):
    return {"ev": "health", "wall": {"t": t, **wall}}


def test_engine_threshold_latches_once():
    engine = AlertEngine([
        AlertRule.from_dict({"name": "rss", "expr": "rss_bytes > 1K"})
    ])
    first = engine.observe({"t": 1.0, "kind": "sample", "rss_bytes": 4096})
    assert [a["rule"] for a in first] == ["rss"]
    assert first[0]["value"] == 4096
    again = engine.observe({"t": 2.0, "kind": "sample", "rss_bytes": 8192})
    assert again == []  # latched: one firing per run
    assert [a["rule"] for a in engine.firing] == ["rss"]


def test_engine_event_count_aliases():
    engine = AlertEngine([
        AlertRule.from_dict({"name": "deaths", "expr": "worker_deaths >= 2"})
    ])
    assert engine.observe({"t": 1.0, "kind": "worker_death"}) == []
    fired = engine.observe({"t": 2.0, "kind": "worker_death"})
    assert [a["rule"] for a in fired] == ["deaths"]
    assert fired[0]["value"] == 2


def test_evaluate_records_is_deterministic_and_reports_absence():
    records = [
        _health(1.0, kind="sample", rss_bytes=100),
        {"ev": "heartbeat", "wall": {"t": 2.0}},
        _health(60.0, kind="sample", rss_bytes=100),
    ]
    rules = (
        AlertRule.from_dict({"name": "quiet", "absent": "heartbeat",
                             "for": "10s"}),
        AlertRule.from_dict({"name": "rss", "expr": "rss_bytes > 1G"}),
    )
    first = evaluate_records(records, rules)
    assert [a["rule"] for a in first] == ["quiet"]  # tail-checked at 60s
    assert evaluate_records(records, rules) == first  # pure function


def test_evaluate_records_latches_prerecorded_alerts():
    records = [
        {"ev": "alert", "wall": {"rule": "rss", "severity": "warning"}},
        _health(1.0, kind="sample", rss_bytes=4096),
    ]
    rules = (AlertRule.from_dict({"name": "rss", "expr": "rss_bytes > 1K"}),)
    alerts = evaluate_records(records, rules)
    assert len(alerts) == 1  # the live-recorded alert, not a duplicate
    assert alerts[0]["severity"] == "warning"


def test_rate_rule_fires_on_sustained_growth():
    engine = AlertEngine([
        AlertRule.from_dict({"name": "leak", "expr": "rss_bytes > 100",
                             "kind": "rate", "window": "10s"})
    ])
    assert engine.observe({"t": 1.0, "kind": "sample",
                           "rss_bytes": 1000}) == []
    fired = engine.observe({"t": 3.0, "kind": "sample", "rss_bytes": 2000})
    assert [a["rule"] for a in fired] == ["leak"]  # 500 B/s > 100


# ----------------------------------------------------------------------
# Fleet state and summaries
# ----------------------------------------------------------------------
def test_fleet_state_tracks_procs_events_and_utilization():
    fleet = FleetState()
    fleet.update({"t": 1.0, "kind": "sample", "role": "worker",
                  "worker": 1, "pid": 99, "cpu_s": 1.0, "rss_bytes": 10})
    fleet.update({"t": 1.0, "kind": "sample", "role": "parent",
                  "pid": 10, "cpu_s": 0.5, "rss_bytes": 20})
    fleet.update({"t": 3.0, "kind": "sample", "role": "worker",
                  "worker": 1, "pid": 99, "cpu_s": 2.0, "rss_bytes": 30})
    fleet.update({"t": 3.0, "kind": "pool", "tasks": 4, "done": 2})
    fleet.update({"t": 3.5, "kind": "worker_death"})
    rows = fleet.rows()
    assert [p.role for p in rows] == ["parent", "worker"]  # parent-first
    worker = rows[1]
    assert worker.utilization == 0.5  # 1 cpu-second over 2 wall-seconds
    assert worker.rss_bytes == 30
    assert fleet.pool == {"tasks": 4, "done": 2}
    assert fleet.events == {"worker_death": 1}
    assert fleet.samples == 3


def test_summarize_and_flatten_health():
    records = [
        _health(1.0, kind="sample", role="parent", pid=1, cpu_s=2.5,
                rss_bytes=100, open_fds=8),
        _health(1.0, kind="sample", role="worker", worker=0, pid=2,
                cpu_s=1.0, rss_bytes=400),
        _health(2.0, kind="pool", tasks=4, done=4, throughput=3.25),
        _health(2.5, kind="worker_spawn"),
        _health(2.6, kind="worker_spawn"),
        {"ev": "alert", "wall": {"rule": "rss"}},
        {"ev": "span", "ph": "B", "id": 1, "name": "x", "wall": {}},
    ]
    summary = summarize_health(records)
    assert summary["samples"] == 2
    assert summary["alerts"] == 1
    assert summary["events"] == {"worker_spawn": 2}
    assert summary["peak_rss_bytes"] == 400
    assert summary["peak_worker_rss_bytes"] == 400
    assert summary["peak_open_fds"] == 8
    assert summary["parent_cpu_s"] == 2.5
    assert summary["throughput"] == 3.25

    flat = flatten_health(summary)
    assert flat["health.samples"] == 2.0
    assert flat["health.events.worker_spawn"] == 2.0
    assert flat["health.peak_rss_bytes"] == 400.0

    assert summarize_health([records[-1]]) == {}  # no health telemetry


def test_health_and_alert_records_are_id_free():
    """strip_wall must reduce health/alert records to bare markers so the
    span-id sequence — the determinism contract — is untouched."""
    health = _health(1.0, kind="sample", pid=1, rss_bytes=7)
    alert = {"ev": "alert", "wall": {"rule": "rss", "value": 7}}
    assert strip_wall(health) == {"ev": "health"}
    assert strip_wall(alert) == {"ev": "alert"}


# ----------------------------------------------------------------------
# Library session: sampler + live rules end to end
# ----------------------------------------------------------------------
def test_telemetry_session_emits_samples_and_live_alerts(tmp_path):
    rules = tmp_path / "rules.json"
    rules.write_text(json.dumps({"rules": [
        {"name": "tiny-rss", "expr": "rss_bytes > 1",
         "severity": "critical"},
    ]}))
    trace = tmp_path / "trace.jsonl"
    with telemetry_session(trace_path=str(trace), health_s=0.0001,
                           alert_rules=str(rules)):
        with OBS.tracer.span("unit.work"):
            OBS.tracer.health_tick()
    records = list(read_trace(trace))
    samples = [r for r in records if r.get("ev") == "health"
               and (r.get("wall") or {}).get("kind") == "sample"]
    assert samples, "due sampler must emit at least the parent sample"
    assert samples[0]["wall"]["role"] == "parent"
    alerts = [r for r in records if r.get("ev") == "alert"]
    assert [a["wall"]["rule"] for a in alerts] == ["tiny-rss"]
    assert alerts[0]["wall"]["severity"] == "critical"
    assert not OBS.enabled


# ----------------------------------------------------------------------
# CLI: the full operational surface
# ----------------------------------------------------------------------
def _rules_file(tmp_path, expr="rss_bytes > 1", name="tiny-rss"):
    path = tmp_path / "rules.json"
    path.write_text(json.dumps({"rules": [{"name": name, "expr": expr}]}))
    return path


def _instrumented_fuzz(tmp_path, extra=()):
    trace = tmp_path / "trace.jsonl"
    metrics = tmp_path / "metrics.json"
    assert main([
        "fuzz", "--platform", "comet_lake", "--patterns", "4",
        "--workers", "2", "--backend", "persistent",  # fork on 1-cpu hosts
        "--trace", str(trace), "--metrics-out", str(metrics),
        "--health", "0.001", *extra,
    ]) == 0
    return trace, metrics


def test_cli_analyze_alerts_gate_exit_codes(tmp_path, capsys):
    trace, _ = _instrumented_fuzz(tmp_path)
    capsys.readouterr()

    firing = _rules_file(tmp_path, expr="rss_bytes > 1")
    assert main(["analyze", str(trace), "--alerts", str(firing)]) == 1
    out = capsys.readouterr().out
    assert "alerts       :" in out
    assert "tiny-rss" in out

    quiet = tmp_path / "quiet.json"
    quiet.write_text(json.dumps({"rules": [
        {"name": "huge-rss", "expr": "rss_bytes > 1T"},
    ]}))
    assert main(["analyze", str(trace), "--alerts", str(quiet)]) == 0
    assert "alerts       : none firing" in capsys.readouterr().out

    bad = tmp_path / "bad.json"
    bad.write_text("{broken")
    assert main(["analyze", str(trace), "--alerts", str(bad)]) == 2


def test_cli_analyze_alerts_json_payload(tmp_path, capsys):
    trace, _ = _instrumented_fuzz(tmp_path)
    capsys.readouterr()
    rules = _rules_file(tmp_path)
    assert main(["analyze", str(trace), "--alerts", str(rules),
                 "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [a["rule"] for a in payload["alerts"]] == ["tiny-rss"]
    assert payload["health"]["samples"] > 0


def test_cli_status_renders_fleet_and_gates_on_alerts(tmp_path, capsys):
    trace, _ = _instrumented_fuzz(tmp_path)
    capsys.readouterr()

    assert main(["status", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "run      : fuzz on comet_lake/S3" in out
    assert "ROLE" in out and "parent" in out and "worker" in out
    assert "worker_spawn=" in out

    rules = _rules_file(tmp_path)
    assert main(["status", str(trace), "--rules", str(rules)]) == 1
    assert "[warning] tiny-rss" in capsys.readouterr().out

    assert main(["status", str(tmp_path / "nothing.jsonl")]) == 2


def test_cli_status_json_payload(tmp_path, capsys):
    trace, _ = _instrumented_fuzz(tmp_path)
    capsys.readouterr()
    rules = _rules_file(tmp_path)
    assert main(["status", str(trace), "--rules", str(rules),
                 "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    roles = {p["role"] for p in payload["procs"]}
    assert roles == {"parent", "worker"}
    assert all(p["rss_bytes"] > 0 for p in payload["procs"])
    assert payload["health_events"]["worker_spawn"] == 2
    assert [a["rule"] for a in payload["alerts"]] == ["tiny-rss"]
    assert payload["done"] is True


def test_cli_top_once(tmp_path, capsys):
    trace, _ = _instrumented_fuzz(tmp_path)
    capsys.readouterr()
    assert main(["top", str(trace), "--once"]) == 0
    out = capsys.readouterr().out
    assert out.count("phase    :") == 1  # exactly one final render
    assert "procs    :" in out

    assert main(["top", str(tmp_path / "nothing.jsonl"), "--once"]) == 2


def test_cli_inspect_events_filter(tmp_path, capsys):
    trace, _ = _instrumented_fuzz(tmp_path)
    capsys.readouterr()
    assert main(["inspect", str(trace), "--events", "health"]) == 0
    captured = capsys.readouterr()
    lines = [json.loads(line) for line in captured.out.splitlines()]
    assert lines and all(r["ev"] == "health" for r in lines)
    assert "record(s)" in captured.err

    assert main(["inspect", str(trace), "--events", "health,manifest",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == len(payload["records"])
    kinds = {r["ev"] for r in payload["records"]}
    assert kinds == {"health", "manifest"}

    assert main(["inspect", str(trace), "--events", "nosuchkind"]) == 0
    captured = capsys.readouterr()
    assert captured.out == ""
    assert "0 record(s)" in captured.err


def test_cli_export_openmetrics_includes_health_gauges(tmp_path, capsys):
    _instrumented_fuzz(tmp_path)
    capsys.readouterr()
    assert main(["export", str(tmp_path), "--format", "openmetrics"]) == 0
    text = capsys.readouterr().out
    assert "# TYPE rhohammer_parent_rss_bytes gauge" in text
    assert "# TYPE rhohammer_worker_rss_bytes gauge" in text
    assert 'rhohammer_worker_rss_bytes{worker="0"}' in text
    assert 'rhohammer_worker_rss_bytes{worker="1"}' in text
    assert text.rstrip().endswith("# EOF")


def test_openmetrics_health_gauges_unit():
    records = [
        _health(1.0, kind="sample", role="parent", pid=1, cpu_s=2.0,
                rss_bytes=100, open_fds=4),
        _health(1.0, kind="sample", role="worker", worker=3, pid=9,
                cpu_s=1.0, rss_bytes=200),
        _health(2.0, kind="sample", role="worker", worker=3, pid=9,
                cpu_s=1.5, rss_bytes=300),  # latest sample wins
    ]
    text = openmetrics_text({"counters": {}}, health_records=records)
    assert "rhohammer_parent_rss_bytes 100" in text
    assert 'rhohammer_worker_rss_bytes{worker="3"} 300' in text
    assert 'rhohammer_worker_cpu_seconds{worker="3"} 1.5' in text
    assert "rhohammer_parent_open_fds 4" in text


def test_cli_rejects_bad_health_and_rules_configuration(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("not rules")
    assert main([
        "fuzz", "--platform", "comet_lake", "--patterns", "2",
        "--trace", str(tmp_path / "t.jsonl"), "--alert-rules", str(bad),
    ]) == 2
    assert "error" in capsys.readouterr().err
    assert not OBS.enabled

    assert main([
        "fuzz", "--platform", "comet_lake", "--patterns", "2",
        "--trace", str(tmp_path / "t2.jsonl"), "--health", "0",
    ]) == 2
    assert "error" in capsys.readouterr().err
    assert not OBS.enabled


def test_parallel_health_run_matches_serial_snapshots(tmp_path):
    """Sampling + live alerts on must not perturb determinism: the
    stripped span stream is bit-identical with health telemetry on or
    off, and the non-wall, non-``health.*`` metric snapshot is
    bit-identical to a serial run (wall payloads and ``health.*``
    counters are the documented exclusions)."""
    rules = _rules_file(tmp_path)

    def run(tag, extra):
        trace = tmp_path / f"{tag}.jsonl"
        metrics = tmp_path / f"{tag}-metrics.json"
        assert main([
            "fuzz", "--platform", "comet_lake", "--patterns", "4",
            "--trace", str(trace), "--metrics-out", str(metrics), *extra,
        ]) == 0
        spans = [
            json.dumps(strip_wall(r), sort_keys=True)
            for r in read_trace(trace)
            if r.get("ev") == "span"
        ]
        snapshot = json.loads(metrics.read_text())["metrics"]
        clean = {
            # Gauges (process-local caches) are outside the identity
            # contract, matching test_parallel_metrics_match_serial.
            section: {
                k: v for k, v in snapshot[section].items()
                if "wall" not in k and not k.startswith("health.")
            }
            for section in ("counters", "histograms")
        }
        return spans, clean

    pool = ["--workers", "2", "--backend", "persistent"]
    serial = run("serial", [])
    plain = run("plain", pool)
    sampled = run("sampled", pool + [
        "--health", "0.001", "--alert-rules", str(rules),
    ])
    # Health sampling leaves the span-id stream untouched.
    assert plain[0] == sampled[0]
    # The metric contract vs serial survives sampling + live alerts.
    assert serial[1] == sampled[1]
