"""Perf-style counter derivation."""

import numpy as np
import pytest

from repro.common.rng import RngStream
from repro.cpu.executor import HammerExecutor
from repro.cpu.hpc import CORE_GHZ, PerfEvent, read_counters
from repro.cpu.isa import HammerKernelConfig, rhohammer_config
from repro.cpu.platform import platform_by_name


@pytest.fixture(scope="module")
def run():
    executor = HammerExecutor(platform_by_name("comet_lake"), rng=RngStream(77))
    config = rhohammer_config(nop_count=50)
    ids = np.tile(np.arange(8), 1500)
    return executor.execute(ids, config), config


def test_miss_rate_matches_executor(run):
    result, config = run
    reading = read_counters(result, config)
    assert reading.miss_rate == pytest.approx(result.miss_rate)


def test_instruction_count_includes_nops(run):
    result, config = run
    reading = read_counters(result, config)
    assert reading[PerfEvent.INSTRUCTIONS] == result.issued * (
        3 + config.nop_count
    )


def test_cycles_track_duration(run):
    result, config = run
    reading = read_counters(result, config)
    assert reading[PerfEvent.CYCLES] == int(result.duration_ns * CORE_GHZ)


def test_activations_equal_misses(run):
    result, config = run
    reading = read_counters(result, config)
    assert reading[PerfEvent.DRAM_ACTIVATIONS] == result.survivors


def test_ipc_is_finite_and_positive(run):
    result, config = run
    reading = read_counters(result, config)
    assert 0 < reading.ipc < 64


def test_empty_run_counters():
    executor = HammerExecutor(platform_by_name("comet_lake"), rng=RngStream(78))
    result = executor.execute(np.array([]), HammerKernelConfig())
    reading = read_counters(result, HammerKernelConfig())
    assert reading.miss_rate == 0.0
    assert reading.ipc == 0.0
