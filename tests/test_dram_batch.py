"""Batched multi-location hammering: session and backend contracts.

The tentpole claim under test: chunking a sweep's locations through
``HammerSession.run_pattern_batch`` is bit-identical — outcomes, flip
events in emission order, and merged OBS metric snapshots — to the
per-location ``run_pattern`` loop, on every executor backend and worker
count, and a mid-batch worker SIGKILL costs one bounded retry without
perturbing the merged result.
"""

import os
import signal

import numpy as np
import pytest

from repro import (
    QUICK_SCALE,
    RunBudget,
    build_machine,
    rhohammer_config,
    sweep_pattern,
)
from repro.engine import ExperimentSpec, PersistentPoolBackend
from repro.exploit.endtoend import canonical_compact_pattern
from repro.hammer.session import HammerSession
from repro.obs import telemetry_session

BASE_ROWS = [4096, 4288, 9000, 4096 + 64, 30000, 512, 15000, 15001]


def _machine(seed: int = 31):
    return build_machine("comet_lake", "S3", scale=QUICK_SCALE, seed=seed)


def _config():
    return rhohammer_config(nop_count=60, num_banks=3)


def _session(machine):
    return HammerSession(
        machine=machine,
        config=_config(),
        disturbance_gain=QUICK_SCALE.disturbance_gain,
    )


def _outcome_key(outcome):
    return (
        outcome.flips,
        outcome.flip_count,
        outcome.cache_miss_rate,
        outcome.duration_ns,
        outcome.acts_issued,
        outcome.acts_executed,
        outcome.disorder_window,
    )


@pytest.mark.parametrize("collect_events", (False, True))
def test_run_pattern_batch_matches_serial_loop(collect_events):
    """Outcomes — flip events in emission order included — are equal."""
    pattern = canonical_compact_pattern()
    acts = QUICK_SCALE.acts_per_pattern

    session = _session(_machine())
    serial = [
        session.run_pattern(
            pattern, row, activations=acts, collect_events=collect_events
        )
        for row in BASE_ROWS
    ]
    batched = _session(_machine()).run_pattern_batch(
        pattern, BASE_ROWS, activations=acts, collect_events=collect_events
    )
    assert len(batched) == len(serial)
    for ser, bat in zip(serial, batched):
        assert _outcome_key(bat) == _outcome_key(ser)
    assert any(o.flip_count > 0 for o in batched)


def test_run_pattern_batch_metrics_match_serial_loop():
    """The merged OBS metric snapshot is bit-identical too."""
    pattern = canonical_compact_pattern()
    acts = QUICK_SCALE.acts_per_pattern

    with telemetry_session(metrics=True) as obs:
        session = _session(_machine())
        for row in BASE_ROWS:
            session.run_pattern(pattern, row, activations=acts)
        serial_snap = obs.metrics.snapshot()
    with telemetry_session(metrics=True) as obs:
        _session(_machine()).run_pattern_batch(
            pattern, BASE_ROWS, activations=acts
        )
        batched_snap = obs.metrics.snapshot()
    assert batched_snap == serial_snap


def test_run_pattern_batch_trivial_inputs():
    pattern = canonical_compact_pattern()
    acts = QUICK_SCALE.acts_per_pattern
    assert _session(_machine()).run_pattern_batch(
        pattern, [], activations=acts
    ) == []
    single = _session(_machine()).run_pattern_batch(
        pattern, [4096], activations=acts
    )
    lone = _session(_machine()).run_pattern(pattern, 4096, acts)
    assert len(single) == 1
    assert _outcome_key(single[0]) == _outcome_key(lone)


def _sweep(batch_locations, workers=1, backend="serial", seed=31):
    report = sweep_pattern(
        _machine(seed),
        _config(),
        canonical_compact_pattern(),
        RunBudget.trials(
            8,
            workers=workers,
            backend=backend,
            batch_locations=batch_locations,
        ),
        scale=QUICK_SCALE,
    )
    return report


BACKENDS = ("serial", "fork", "persistent")


@pytest.mark.parametrize("workers", (1, 2))
@pytest.mark.parametrize("backend", BACKENDS)
def test_batched_sweep_bit_identical_across_backends(backend, workers):
    baseline = _sweep("off")
    batched = _sweep(4, workers=workers, backend=backend)
    assert batched.base_rows == baseline.base_rows
    assert (batched.flips_per_location == baseline.flips_per_location).all()
    assert (batched.virtual_minutes == baseline.virtual_minutes).all()


def _simulation_metrics(snapshot):
    """Strip executor-infrastructure instruments before comparing.

    Batching intentionally changes pool task granularity (``pool.*``) and
    pool/host health accounting (``health.*``) measures nondeterministic
    wall time; every *simulation* instrument — ``dram.*``, ``hammer.*``,
    ``sweep.*``, ``cpu.*`` — must stay bit-identical.
    """
    return {
        section: {
            key: value
            for key, value in values.items()
            if not key.startswith(("pool.", "health."))
        }
        for section, values in snapshot.items()
    }


@pytest.mark.parametrize(
    "workers,backend", ((1, "serial"), (2, "persistent"))
)
def test_batched_sweep_metrics_match_unbatched(workers, backend):
    """Chunked dispatch leaves the merged simulation telemetry unchanged.

    Compared at matching worker counts: how worker merging treats
    per-process cache gauges and zero-valued counters is a (pre-existing)
    property of the pool, not of batching.
    """
    with telemetry_session(metrics=True) as obs:
        _sweep("off", workers=workers, backend=backend)
        unbatched_snap = _simulation_metrics(obs.metrics.snapshot())
    with telemetry_session(metrics=True) as obs:
        _sweep(4, workers=workers, backend=backend)
        batched_snap = _simulation_metrics(obs.metrics.snapshot())
    assert unbatched_snap["counters"]["hammer.dispatches"] == 8
    assert batched_snap == unbatched_snap


def test_batched_chunk_survives_worker_sigkill(tmp_path):
    """A worker SIGKILLed mid-chunk costs one retry, not the results.

    Reuses the failure-injection harness: the first worker that picks up
    the poisoned chunk dies; the pool respawns and replays it, and the
    batched flip counts stay bit-identical to an undisturbed serial run.
    """
    pattern = canonical_compact_pattern()
    acts = QUICK_SCALE.acts_per_pattern
    chunks = [tuple(BASE_ROWS[i:i + 2]) for i in range(0, len(BASE_ROWS), 2)]

    serial_session = _session(_machine())
    expected = [
        [
            o.flip_count
            for o in serial_session.run_pattern_batch(
                pattern, rows, activations=acts
            )
        ]
        for rows in chunks
    ]

    flag = tmp_path / "crashed-once"

    def run_chunk(session, rows):
        if rows == chunks[1] and not flag.exists():
            flag.write_text("x")
            os.kill(os.getpid(), signal.SIGKILL)
        outcomes = session.run_pattern_batch(pattern, rows, activations=acts)
        return [o.flip_count for o in outcomes]

    spec = ExperimentSpec(
        machine=_machine(), config=_config(), scale=QUICK_SCALE
    )
    with PersistentPoolBackend(workers=3, chunk_size=1) as backend:
        report = backend.map(run_chunk, chunks, init=spec.session)
        pids = backend.worker_pids()
    assert report.results == expected
    assert report.errors == []
    assert report.retries >= 1
    assert not report.degraded
    for pid in pids:
        stat = f"/proc/{pid}/stat"
        if os.path.exists(stat):
            with open(stat) as fh:
                state = fh.read().rsplit(")", 1)[1].split()[0]
            assert state != "Z", f"worker {pid} left as a zombie"
