"""RunManifest fallback and round-trip tests."""

import json
import subprocess

import pytest

from repro.obs.manifest import RunManifest, _safe_probe, git_describe


def test_git_describe_inside_repo_is_nonempty():
    assert git_describe()  # describe output or "unknown", never empty


def test_git_describe_outside_a_repo_degrades(tmp_path):
    assert git_describe(cwd=tmp_path) == "unknown"


def test_git_describe_survives_missing_binary(tmp_path, monkeypatch):
    def no_git(*args, **kwargs):
        raise FileNotFoundError("git")

    monkeypatch.setattr(subprocess, "run", no_git)
    assert git_describe(cwd=tmp_path) == "unknown"


def test_safe_probe_fallbacks():
    assert _safe_probe(lambda: "3.11.7") == "3.11.7"
    assert _safe_probe(lambda: "") == "unknown"

    def boom():
        raise RuntimeError("no metadata here")

    assert _safe_probe(boom) == "unknown"


def test_collect_survives_broken_interpreter_metadata(monkeypatch):
    import platform

    monkeypatch.setattr(
        platform, "python_version",
        lambda: (_ for _ in ()).throw(OSError("probe failed")),
    )
    monkeypatch.setattr(
        platform, "node",
        lambda: (_ for _ in ()).throw(OSError("probe failed")),
    )
    manifest = RunManifest.collect("fuzz", seed=7)
    assert manifest.versions["python"] == "unknown"
    assert manifest.wall["host"] == "unknown"
    assert manifest.versions["repro"] != "unknown"


def test_collect_populates_identity_fields():
    manifest = RunManifest.collect(
        "fuzz",
        argv=["--patterns", "4"],
        seed=7,
        platform="comet_lake",
        dimm="S3",
        scale="quick",
        budget={"patterns": 4},
    )
    assert manifest.command == "fuzz"
    assert manifest.argv == ("--patterns", "4")
    assert manifest.versions["python"]
    assert manifest.versions["numpy"]
    assert manifest.wall["pid"] > 0


def test_round_trip_stability(tmp_path):
    manifest = RunManifest.collect(
        "fuzz", seed=7, platform="comet_lake", dimm="S3", scale="quick",
        budget={"patterns": 4},
    )
    manifest.exit_code = 0
    manifest.metrics = {"counters": {"fuzz.flips_total": 3}}

    path = tmp_path / "metrics.json"
    manifest.write(path)
    loaded = json.loads(path.read_text())
    assert loaded == manifest.to_dict()

    # Serialising the same manifest twice is byte-stable.
    again = tmp_path / "again.json"
    manifest.write(again)
    assert path.read_bytes() == again.read_bytes()

    # header_dict is the deterministic subset of to_dict.
    header = manifest.header_dict()
    assert "wall" not in header
    assert all(loaded[k] == v for k, v in json.loads(
        json.dumps(header)
    ).items())


def test_header_seed_matches_trace_contract():
    manifest = RunManifest.collect("fuzz", seed=2025)
    header = manifest.header_dict()
    assert header["seed"] == 2025
    with pytest.raises(KeyError):
        header["wall"]
