"""Disorder model: windows, drops, reordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import RngStream
from repro.cpu.isa import (
    AddressingMode,
    Barrier,
    HammerInstruction,
    HammerKernelConfig,
)
from repro.cpu.platform import platform_by_name
from repro.cpu.speculation import DisorderModel, revisit_distances


@pytest.fixture(scope="module")
def raptor_model() -> DisorderModel:
    return DisorderModel(platform_by_name("raptor_lake"))


@pytest.fixture(scope="module")
def comet_model() -> DisorderModel:
    return DisorderModel(platform_by_name("comet_lake"))


def test_nops_shrink_the_window(raptor_model):
    bare = raptor_model.profile(HammerKernelConfig(nop_count=0))
    padded = raptor_model.profile(HammerKernelConfig(nop_count=300))
    assert padded.window < bare.window


def test_enough_nops_plus_obfuscation_serialise(raptor_model):
    config = HammerKernelConfig(nop_count=500, obfuscate_control_flow=True)
    profile = raptor_model.profile(config)
    assert profile.window < 13  # only the obfuscation residual remains


def test_obfuscation_removes_branch_disorder_on_comet(comet_model):
    plain = comet_model.profile(HammerKernelConfig())
    obfuscated = comet_model.profile(
        HammerKernelConfig(obfuscate_control_flow=True)
    )
    branch = comet_model.platform.branch_window
    assert plain.window - obfuscated.window == pytest.approx(branch)


def test_immediate_addressing_widens_window(comet_model):
    indexed = comet_model.profile(
        HammerKernelConfig(addressing=AddressingMode.INDEXED)
    )
    immediate = comet_model.profile(
        HammerKernelConfig(addressing=AddressingMode.IMMEDIATE)
    )
    assert immediate.window > indexed.window * 2


def test_lfence_orders_indexed_but_not_immediate_prefetch(raptor_model):
    indexed = raptor_model.profile(HammerKernelConfig(
        barrier=Barrier.LFENCE,
        addressing=AddressingMode.INDEXED,
        obfuscate_control_flow=True,
    ))
    immediate = raptor_model.profile(HammerKernelConfig(
        barrier=Barrier.LFENCE,
        addressing=AddressingMode.IMMEDIATE,
        obfuscate_control_flow=True,
    ))
    # The paper's Section 4.4 finding: LFENCE only orders prefetches
    # indirectly through the address-resolution dependency.
    assert immediate.window > indexed.window * 3


def test_mfence_orders_loads_not_prefetches(raptor_model):
    load = raptor_model.profile(HammerKernelConfig(
        instruction=HammerInstruction.LOAD,
        barrier=Barrier.MFENCE,
        obfuscate_control_flow=True,
    ))
    prefetch = raptor_model.profile(HammerKernelConfig(
        instruction=HammerInstruction.PREFETCHT2,
        barrier=Barrier.MFENCE,
        obfuscate_control_flow=True,
        addressing=AddressingMode.IMMEDIATE,
    ))
    assert load.window < prefetch.window


def test_cpuid_serialises_everything(raptor_model):
    profile = raptor_model.profile(HammerKernelConfig(
        barrier=Barrier.CPUID,
        obfuscate_control_flow=True,
        addressing=AddressingMode.IMMEDIATE,
    ))
    assert profile.window < 13


def test_newer_platform_has_larger_windows(comet_model, raptor_model):
    config = HammerKernelConfig()
    assert raptor_model.profile(config).window > comet_model.profile(config).window


# ----------------------------------------------------------------------
# Drop probabilities
# ----------------------------------------------------------------------
def test_drops_decrease_with_distance(raptor_model):
    profile = raptor_model.profile(HammerKernelConfig())
    d = np.array([1, 10, 100, 1000, 100000])
    p = raptor_model.drop_probabilities(d, profile)
    assert np.all(np.diff(p) <= 0)
    assert p[0] > 0.8 * profile.drop_cap
    assert p[-1] < 0.01


def test_serial_profile_never_drops(comet_model):
    config = HammerKernelConfig(nop_count=600, obfuscate_control_flow=True)
    profile = comet_model.profile(config)
    assert profile.effectively_serial
    p = comet_model.drop_probabilities(np.array([1, 2, 3]), profile)
    assert np.all(p == 0)


def test_load_cap_below_prefetch_cap(comet_model):
    load = comet_model.profile(
        HammerKernelConfig(instruction=HammerInstruction.LOAD)
    )
    prefetch = comet_model.profile(
        HammerKernelConfig(instruction=HammerInstruction.PREFETCHT2)
    )
    assert load.drop_cap < prefetch.drop_cap


# ----------------------------------------------------------------------
# Reordering
# ----------------------------------------------------------------------
def test_serial_order_is_program_order(comet_model):
    profile = comet_model.profile(
        HammerKernelConfig(nop_count=600, obfuscate_control_flow=True)
    )
    order = comet_model.shuffle_order(100, profile, RngStream(1))
    assert np.array_equal(order, np.arange(100))


def test_shuffle_displacement_is_bounded(raptor_model):
    profile = raptor_model.profile(HammerKernelConfig())
    order = raptor_model.shuffle_order(5000, profile, RngStream(2))
    displacement = np.abs(order - np.arange(5000))
    assert displacement.max() <= profile.window + 1
    assert displacement.max() > 0


def test_shuffle_is_a_permutation(raptor_model):
    profile = raptor_model.profile(HammerKernelConfig())
    order = raptor_model.shuffle_order(1000, profile, RngStream(3))
    assert sorted(order.tolist()) == list(range(1000))


# ----------------------------------------------------------------------
# Revisit distances
# ----------------------------------------------------------------------
def naive_revisit(ids):
    last = {}
    out = []
    for i, x in enumerate(ids):
        out.append(i - last[x] if x in last else 10**17)
        last[x] = i
    return out


def test_revisit_distances_simple():
    ids = np.array([7, 8, 7, 7, 8])
    d = revisit_distances(ids)
    assert d[2] == 2 and d[3] == 1 and d[4] == 3
    assert d[0] > 10**6 and d[1] > 10**6


def test_revisit_distances_empty():
    assert revisit_distances(np.array([], dtype=np.int64)).size == 0


@settings(max_examples=50, deadline=None)
@given(ids=st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                    max_size=200))
def test_revisit_distances_match_naive(ids):
    arr = np.array(ids, dtype=np.int64)
    fast = revisit_distances(arr)
    slow = naive_revisit(ids)
    for f, s in zip(fast.tolist(), slow):
        if s >= 10**17:
            assert f > 10**6
        else:
            assert f == s
