"""Sweeping an effective pattern across locations (Figure 11)."""

import numpy as np
import pytest

from repro import (
    QUICK_SCALE,
    RunBudget,
    build_machine,
    rhohammer_config,
    sweep_pattern,
)
from repro.exploit.endtoend import canonical_compact_pattern


@pytest.fixture(scope="module")
def comet_sweep(comet_machine):
    return sweep_pattern(
        comet_machine,
        rhohammer_config(nop_count=60, num_banks=3),
        canonical_compact_pattern(),
        RunBudget.trials(12),
        scale=QUICK_SCALE,
    )


def test_sweep_visits_distinct_locations(comet_sweep):
    assert len(set(comet_sweep.base_rows)) == 12


def test_sweep_accumulates_flips(comet_sweep):
    assert comet_sweep.total_flips > 0
    cumulative = comet_sweep.cumulative_flips
    assert (np.diff(cumulative) >= 0).all()
    assert cumulative[-1] == comet_sweep.total_flips


def test_virtual_time_is_monotone(comet_sweep):
    assert (np.diff(comet_sweep.virtual_minutes) > 0).all()


def test_flip_rate_is_positive(comet_sweep):
    assert comet_sweep.flips_per_minute > 0


def test_flips_spread_across_locations(comet_sweep):
    """Figure 11's observation: flips progress smoothly — desired flips
    can be found at most positions, not just a lucky few."""
    assert comet_sweep.locations_with_flips >= 12 * 0.5


def test_sweep_report_consistency(comet_sweep):
    assert comet_sweep.flips_per_location.size == 12
    assert comet_sweep.virtual_minutes.size == 12


def test_legacy_num_locations_shim_matches_budget(comet_machine, comet_sweep):
    """Both legacy spellings warn but produce the budgeted sweep."""
    config = rhohammer_config(nop_count=60, num_banks=3)
    with pytest.warns(DeprecationWarning, match="RunBudget"):
        positional = sweep_pattern(
            comet_machine, config, canonical_compact_pattern(), 12,
            QUICK_SCALE,
        )
    with pytest.warns(DeprecationWarning, match="RunBudget"):
        keyword = sweep_pattern(
            comet_machine, config, canonical_compact_pattern(),
            num_locations=12, scale=QUICK_SCALE,
        )
    for legacy in (positional, keyword):
        assert legacy.base_rows == comet_sweep.base_rows
        assert (
            legacy.flips_per_location == comet_sweep.flips_per_location
        ).all()


def _sweep_with(cache_size: int, workers: int):
    machine = build_machine("comet_lake", "S3", scale=QUICK_SCALE, seed=7)
    machine.executor.cache_size = cache_size
    report = sweep_pattern(
        machine,
        rhohammer_config(nop_count=60, num_banks=3),
        canonical_compact_pattern(),
        RunBudget.trials(8, workers=workers),
        scale=QUICK_SCALE,
    )
    return machine, report


def test_executor_memo_never_changes_sweep_results():
    """Memoisation is an optimisation only: cache on == cache off."""
    cached_machine, cached = _sweep_with(cache_size=64, workers=1)
    _, uncached = _sweep_with(cache_size=0, workers=1)
    assert cached.base_rows == uncached.base_rows
    assert (cached.flips_per_location == uncached.flips_per_location).all()
    assert (cached.virtual_minutes == uncached.virtual_minutes).all()
    # All locations replay one (stream, kernel) pair: the prewarm is the
    # only real execution, every trial afterwards hits the memo.
    assert cached_machine.executor.cache_misses == 1
    assert cached_machine.executor.cache_hits >= 8


def test_sweep_workers_bit_identical_with_memoisation():
    _, serial = _sweep_with(cache_size=64, workers=1)
    _, parallel = _sweep_with(cache_size=64, workers=2)
    assert serial.base_rows == parallel.base_rows
    assert (serial.flips_per_location == parallel.flips_per_location).all()
    assert (serial.virtual_minutes == parallel.virtual_minutes).all()
