"""Shared-memory state packs for the persistent executor backend.

The parent publishes derived caches (executor memo results, DRAM cell
threshold profiles) into one ``multiprocessing.shared_memory`` segment;
workers attach read-only views and seed their caches from them.  These
tests pin the round trip, the read-only contract, and segment hygiene.
"""

import glob

import numpy as np
import pytest

from repro import QUICK_SCALE, build_machine, rhohammer_config
from repro.engine.executor import SEGMENT_PREFIX, SharedArrayPack
from repro.engine.executor.sharedmem import (
    adopt_machine_state,
    export_machine_state,
)


def _segments():
    return set(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


def test_pack_round_trip_and_read_only_views():
    arrays = {
        "a": np.arange(7, dtype=np.float64),
        "b": np.arange(12, dtype=np.int64).reshape(3, 4),
        "empty": np.empty(0, dtype=np.int8),
    }
    pack = SharedArrayPack.publish(arrays)
    try:
        attached = SharedArrayPack.attach(pack.handle())
        try:
            for name, src in arrays.items():
                got = attached.view(name)
                assert got.dtype == src.dtype
                assert got.shape == src.shape
                assert np.array_equal(got, src)
                with pytest.raises(ValueError):
                    got[...] = 0  # views are read-only
        finally:
            attached.close()
    finally:
        pack.close()
        pack.unlink()
    assert f"/dev/shm/{pack.name}" not in _segments()


def test_unlink_is_idempotent_and_owner_only():
    pack = SharedArrayPack.publish({"x": np.ones(3)})
    attached = SharedArrayPack.attach(pack.handle())
    attached.close()
    attached.unlink()  # non-owner: must be a no-op
    assert f"/dev/shm/{pack.name}" in _segments()
    pack.close()
    pack.unlink()
    pack.unlink()  # second unlink must not raise
    assert f"/dev/shm/{pack.name}" not in _segments()


def test_machine_state_export_adopt_seeds_worker_caches():
    scale = QUICK_SCALE
    config = rhohammer_config(nop_count=60, num_banks=2)
    warm = build_machine("comet_lake", "S3", scale=scale, seed=77)
    # Populate both caches: one kernel execution memoises an
    # ExecutionResult, and hammering a row materialises cell profiles.
    from repro.hammer.session import HammerSession
    from repro.exploit.endtoend import canonical_compact_pattern

    session = HammerSession(warm, config)
    session.run_pattern(
        canonical_compact_pattern(), 5000, activations=scale.acts_per_pattern
    )

    exported = export_machine_state(warm)
    assert exported is not None
    control, pack = exported
    try:
        assert control["executor"] or control["cells"] is not None

        cold = build_machine("comet_lake", "S3", scale=scale, seed=77)
        worker_pack = adopt_machine_state(cold, control)
        assert worker_pack is not None
        try:
            if control["executor"]:
                hits = cold.executor._cache
                assert len(hits) == len(control["executor"])
            if control["cells"] is not None:
                assert len(cold.dimm.cells._cache) == len(control["cells"])
                # Seeded profiles must agree with the warm machine's.
                (bank, row, _, _) = control["cells"][0]
                a = warm.dimm.cells.profile(bank, row)
                b = cold.dimm.cells.profile(bank, row)
                assert np.array_equal(a.thresholds, b.thresholds)
                assert np.array_equal(a.bit_indices, b.bit_indices)
                assert np.array_equal(a.directions, b.directions)
        finally:
            worker_pack.close()
    finally:
        pack.close()
        pack.unlink()


def test_export_returns_none_for_pristine_machine():
    machine = build_machine("comet_lake", "S3", scale=QUICK_SCALE, seed=78)
    assert export_machine_state(machine) is None
