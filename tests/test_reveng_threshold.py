"""Step 0: SBDR threshold discovery (Figure 3)."""

import pytest

from repro.dram.timing import AccessLatency
from repro.reveng.threshold import find_sbdr_threshold


def test_threshold_separates_the_modes(comet_oracle):
    result = find_sbdr_threshold(comet_oracle, num_pairs=1500)
    latency = AccessLatency()
    assert latency.diff_bank < result.threshold_ns < latency.row_conflict
    assert result.fast_center_ns < result.slow_center_ns


def test_slow_fraction_tracks_bank_collision_probability(comet_oracle):
    result = find_sbdr_threshold(comet_oracle, num_pairs=4000)
    banks = comet_oracle.machine.mapping.num_banks
    expected = 1.0 / banks
    assert expected / 2.2 < result.slow_fraction < expected * 2.2


def test_histogram_is_bimodal(comet_oracle):
    result = find_sbdr_threshold(comet_oracle, num_pairs=3000)
    counts, edges = result.histogram(bins=40)
    centers = (edges[:-1] + edges[1:]) / 2
    below = counts[centers < result.threshold_ns].sum()
    above = counts[centers >= result.threshold_ns].sum()
    assert below > 0 and above > 0
    assert below > above  # non-SBDR pairs dominate


def test_threshold_works_on_new_mappings(raptor_oracle):
    result = find_sbdr_threshold(raptor_oracle, num_pairs=1500)
    assert result.slow_fraction > 0.0
    assert result.samples.size == 1500
