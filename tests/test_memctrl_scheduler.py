"""Command-level scheduler: timing invariants and cross-validation."""

import pytest

from repro.dram.timing import AccessLatency, DdrTiming
from repro.memctrl.scheduler import (
    T_CAS,
    T_FAW,
    T_RRD,
    Command,
    CommandKind,
    CommandScheduler,
)


def acts(scheduler):
    return [c for c in scheduler.commands if c.kind is CommandKind.ACT]


def test_row_hit_needs_no_activation():
    scheduler = CommandScheduler()
    first = scheduler.access(0, 100)
    hit = scheduler.access(0, 100)
    assert scheduler.activation_count() == 1
    assert hit < first
    assert hit == pytest.approx(T_CAS)


def test_row_conflict_pays_pre_act_rcd():
    timing = DdrTiming()
    scheduler = CommandScheduler(timing=timing)
    scheduler.access(0, 100)
    conflict = scheduler.access(0, 200)
    # PRE cannot issue before tRAS after the ACT; then tRP + tRCD + CAS.
    assert conflict >= timing.t_rp + timing.t_rcd + T_CAS
    kinds = [c.kind for c in scheduler.commands]
    assert kinds == [
        CommandKind.ACT, CommandKind.RD,
        CommandKind.PRE, CommandKind.ACT, CommandKind.RD,
    ]


def test_different_bank_avoids_the_precharge():
    scheduler = CommandScheduler()
    scheduler.access(0, 100)
    other_bank = scheduler.access(1, 100)
    scheduler2 = CommandScheduler()
    scheduler2.access(0, 100)
    conflict = scheduler2.access(0, 200)
    assert other_bank < conflict


def test_trrd_spacing_between_activations():
    scheduler = CommandScheduler()
    for bank in range(4):
        scheduler.access(bank, 50)
    times = [c.issue_ns for c in acts(scheduler)]
    for a, b in zip(times, times[1:]):
        assert b - a >= T_RRD - 1e-9


def test_four_activate_window():
    scheduler = CommandScheduler()
    for bank in range(8):
        scheduler.access(bank, 50)
    times = [c.issue_ns for c in acts(scheduler)]
    for i in range(len(times) - 4):
        assert times[i + 4] - times[i] >= T_FAW - 1e-9


def test_same_bank_act_spacing_respects_row_cycle():
    timing = DdrTiming()
    scheduler = CommandScheduler(timing=timing)
    for _ in range(5):
        scheduler.access(0, 100)
        scheduler.access(0, 200)
    times = [c.issue_ns for c in acts(scheduler)]
    for a, b in zip(times, times[1:]):
        assert b - a >= timing.t_rc - 1e-9


def test_refresh_closes_all_rows():
    scheduler = CommandScheduler()
    scheduler.access(0, 100)
    scheduler.access(3, 700)
    scheduler.refresh()
    before = scheduler.activation_count()
    scheduler.access(0, 100)  # same row, but must re-activate
    assert scheduler.activation_count() == before + 1


def test_scheduler_validates_sbdr_latency_direction():
    """Cross-validation of the calibrated AccessLatency constants.

    At command level the conflict premium is exactly tRP + tRCD; the
    core-visible premium the attacker measures (AccessLatency) is larger
    because every measured access also traverses the flush + dependent-
    load path, which amplifies DRAM-side stalls.  The command-level model
    pins the lower bound and the direction of the gap.
    """
    timing = DdrTiming()
    latency = AccessLatency()
    scheduler = CommandScheduler(timing=timing)
    scheduler.access(0, 1)
    conflict = scheduler.access(0, 2)
    hit_sched = CommandScheduler(timing=timing)
    hit_sched.access(0, 1)
    hit_latency = hit_sched.access(0, 1)
    command_gap = conflict - hit_latency
    assert command_gap == pytest.approx(timing.t_rp + timing.t_rcd, rel=0.01)
    calibrated_gap = latency.row_conflict - latency.row_hit
    assert calibrated_gap > command_gap
    # The measurement-side amplification stays within one order of
    # magnitude of the raw command premium.
    assert calibrated_gap < 10 * command_gap


def test_run_helper_matches_sequential_access():
    a = CommandScheduler()
    latencies = a.run([(0, 1), (0, 2), (1, 1)])
    b = CommandScheduler()
    expected = [b.access(0, 1), b.access(0, 2), b.access(1, 1)]
    assert latencies == expected


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------
from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=40, deadline=None)
@given(accesses=st.lists(
    st.tuples(st.integers(min_value=0, max_value=7),
              st.integers(min_value=0, max_value=500)),
    min_size=1, max_size=60,
))
def test_scheduler_invariants(accesses):
    """For any access sequence: latencies are at least the column access
    time, commands are issued in non-decreasing time, and the activation
    count never exceeds the access count."""
    scheduler = CommandScheduler()
    latencies = scheduler.run(accesses)
    assert all(lat >= T_CAS - 1e-9 for lat in latencies)
    times = [c.issue_ns for c in scheduler.commands]
    assert times == sorted(times)
    assert scheduler.activation_count() <= len(accesses)
    # Every access ends with exactly one RD command.
    reads = sum(1 for c in scheduler.commands if c.kind is CommandKind.RD)
    assert reads == len(accesses)
