"""Recovered-vs-truth mapping comparison."""

from repro.mapping.functions import AddressMapping, BankFunction
from repro.reveng.report import compare_mappings


def mapping(funcs, rows=(18, 33)):
    return AddressMapping(
        bank_functions=tuple(BankFunction(f) for f in funcs),
        row_bits=rows,
        phys_bits=34,
    )


def test_identical_mappings_match():
    a = mapping([(6, 13), (14, 18)])
    score = compare_mappings(a, a)
    assert score.fully_correct
    assert score.missing_functions == ()
    assert score.spurious_functions == ()


def test_function_order_is_irrelevant():
    a = mapping([(6, 13), (14, 18)])
    b = mapping([(14, 18), (6, 13)])
    assert compare_mappings(a, b).fully_correct


def test_missing_function_detected():
    truth = mapping([(6, 13), (14, 18), (15, 19)])
    recovered = mapping([(6, 13), (14, 18)])
    score = compare_mappings(recovered, truth)
    assert not score.functions_correct
    assert score.missing_functions == ((15, 19),)


def test_spurious_function_detected():
    truth = mapping([(6, 13)])
    recovered = mapping([(6, 13), (7, 12)])
    score = compare_mappings(recovered, truth)
    assert score.spurious_functions == ((7, 12),)


def test_wrong_row_range_detected():
    truth = mapping([(6, 13)], rows=(18, 33))
    recovered = mapping([(6, 13)], rows=(17, 33))
    score = compare_mappings(recovered, truth)
    assert score.functions_correct
    assert not score.row_range_correct
    assert not score.fully_correct
