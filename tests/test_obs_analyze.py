"""Trace analytics tests: rollups, critical path, utilization, tolerance."""

import json

import pytest

from repro.cli import main
from repro.obs.analyze import (
    RunArtifacts,
    RunLoadError,
    analyze_run,
    build_span_tree,
    format_analysis,
)

FUZZ_ARGS = (
    "fuzz", "--platform", "comet_lake", "--dimm", "S3", "--patterns", "4",
    "--workers", "2",
)


@pytest.fixture(scope="module")
def fuzz_run(recorded_runs):
    # The utilization assertions need a genuinely forked 2-worker pool;
    # lift the host-CPU cap so the recording forks even on 1-CPU CI.
    from repro.engine.executor import factory as factory_module

    mp = pytest.MonkeyPatch()
    mp.setattr(factory_module, "default_workers", lambda: 8)
    try:
        return recorded_runs("analyze-fuzz", *FUZZ_ARGS)
    finally:
        mp.undo()


def test_phase_rollups_cover_the_span_hierarchy(fuzz_run):
    analysis = analyze_run(fuzz_run)
    for phase in ("cli.fuzz", "fuzz.campaign", "pool.batch", "pool.task",
                  "hammer.pattern"):
        assert phase in analysis.phases, phase
    tasks = analysis.phases["pool.task"]
    assert tasks.count == 4
    assert tasks.errors == 0
    # Self time never exceeds inclusive time, per phase and in total.
    for rollup in analysis.phases.values():
        assert rollup.self_wall_s <= rollup.wall_s + 1e-9
    # hammer.pattern is a leaf: all its time is self time.
    leaf = analysis.phases["hammer.pattern"]
    assert leaf.self_wall_s == pytest.approx(leaf.wall_s)
    assert leaf.virtual_ns > 0


def test_critical_path_descends_from_the_root(fuzz_run):
    analysis = analyze_run(fuzz_run)
    path = [step["name"] for step in analysis.critical_path]
    assert path[0] == "cli.fuzz"
    assert "pool.task" in path
    assert path[-1] == "hammer.pattern"
    # Wall durations never grow while descending.
    walls = [step["wall_s"] for step in analysis.critical_path]
    assert walls == sorted(walls, reverse=True)
    assert analysis.critical_path[0]["of_total"] == 1.0


def test_worker_utilization_and_skew(fuzz_run):
    workers = analyze_run(fuzz_run).workers
    assert workers.batches == 1
    assert workers.configured_workers == 2
    assert workers.tasks == 4
    assert len(workers.busy_s_by_worker) == 2  # two distinct worker pids
    assert workers.utilization is not None and 0 < workers.utilization <= 1
    assert workers.skew is not None and workers.skew >= 1.0


def test_analysis_to_dict_is_json_ready(fuzz_run):
    payload = analyze_run(fuzz_run).to_dict()
    json.dumps(payload)  # must not raise
    assert payload["manifest"]["command"] == "fuzz"
    assert payload["events"] > 0
    assert payload["workers"]["utilization"] is not None
    assert payload["top_spans"][0]["name"] == "cli.fuzz"


def test_corrupt_trace_lines_are_skipped_and_counted(fuzz_run, tmp_path):
    mangled = tmp_path / "trace.jsonl"
    text = (fuzz_run / "trace.jsonl").read_text()
    lines = text.splitlines()
    # A truncated tail (killed mid-write), plus garbage mid-stream.
    lines.insert(3, '{"ev": "span", "ph": "B", "id":')
    lines.insert(7, "not json at all")
    lines.append('["a", "json", "array", "not", "an", "object"]')
    mangled.write_text("\n".join(lines) + "\n")
    analysis = analyze_run(mangled)
    assert analysis.skipped_lines == 3
    assert analysis.events == len(text.splitlines())
    assert "skipped 3 corrupt trace line(s)" in format_analysis(analysis)


def test_unclosed_spans_survive_analysis():
    roots, _, _ = build_span_tree([
        {"ev": "span", "ph": "B", "id": 1, "parent": None, "name": "a",
         "attrs": {}},
        {"ev": "span", "ph": "B", "id": 2, "parent": 1, "name": "b",
         "attrs": {}},
        # run killed: neither span closed
    ])
    assert len(roots) == 1
    assert not roots[0].closed
    assert roots[0].children[0].name == "b"


def test_load_rejects_missing_and_empty_inputs(tmp_path):
    with pytest.raises(RunLoadError):
        RunArtifacts.load(tmp_path / "nope")
    (tmp_path / "empty").mkdir()
    with pytest.raises(RunLoadError):
        RunArtifacts.load(tmp_path / "empty")
    empty_trace = tmp_path / "empty.jsonl"
    empty_trace.write_text("")
    with pytest.raises(RunLoadError):
        analyze_run(empty_trace)


def test_cli_analyze_human_and_json(fuzz_run, capsys):
    assert main(["analyze", str(fuzz_run)]) == 0
    out = capsys.readouterr().out
    assert "critical path" in out
    assert "utilization=" in out

    assert main(["analyze", str(fuzz_run), "--json", "--top", "3"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["top_spans"]) == 3
    assert "pool.task" in payload["phases"]


def test_cli_analyze_fails_on_bad_input(tmp_path, capsys):
    assert main(["analyze", str(tmp_path / "missing")]) == 2
    assert "error" in capsys.readouterr().err
