"""Smoke tests: every shipped example runs to completion.

The examples are the library's public face; each is executed in-process
(monkeypatched to a tiny workload where needed) and must finish without
raising.
"""

import runpy
import sys

import pytest


@pytest.fixture(autouse=True)
def _quiet_argv(monkeypatch):
    monkeypatch.setattr(sys, "argv", ["example"])


def test_quickstart_runs(capsys):
    runpy.run_path("examples/quickstart.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "correct   : True" in out
    assert "total bit flips" in out


def test_end_to_end_attack_runs(capsys):
    runpy.run_path("examples/end_to_end_attack.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "optimal NOP count" in out
    assert "Massaging + templating" in out


@pytest.mark.slow
def test_reverse_engineering_tour_runs(capsys):
    runpy.run_path(
        "examples/reverse_engineering_tour.py", run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "threshold" in out
    assert "rhoHammer : correct=True" in out


@pytest.mark.slow
def test_mitigation_study_runs(capsys):
    runpy.run_path("examples/mitigation_study.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "pTRR" in out
    assert "randomized row-swap" in out


@pytest.mark.slow
def test_pattern_zoo_runs(capsys):
    runpy.run_path("examples/pattern_zoo.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "blacksmith" in out
    assert "double-sided" in out


@pytest.mark.slow
def test_ddr5_outlook_runs(capsys):
    runpy.run_path("examples/ddr5_outlook.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "DDR5 + RFM (production)" in out
    assert "0 flips" in out


@pytest.mark.slow
def test_full_campaign_runs(capsys):
    runpy.run_path("examples/full_campaign.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "campaign succeeded: True" in out
