"""Run-diff engine tests: classification, thresholds, CLI exit codes."""

import json
import shutil

import pytest

from repro.cli import main
from repro.obs.compare import (
    compare_runs,
    direction_for,
    format_comparison,
    is_wall_key,
)

FUZZ_ARGS = (
    "fuzz", "--platform", "comet_lake", "--dimm", "S3", "--patterns", "4",
)


@pytest.fixture(scope="module")
def run_a(recorded_runs):
    return recorded_runs("compare-a", *FUZZ_ARGS)


@pytest.fixture(scope="module")
def run_b(recorded_runs):
    return recorded_runs("compare-b", *FUZZ_ARGS)


def _slowed_copy(run, tmp_path, factor=2.0):
    """A copy of ``run`` with its deterministic reveng/virtual work scaled,
    simulating e.g. doubled SBDR probe rounds."""
    slowed = tmp_path / "slowed"
    shutil.copytree(run, slowed)
    manifest = json.loads((slowed / "metrics.json").read_text())
    counters = manifest["metrics"]["counters"]
    counters["reveng.sbdr_probes"] = int(
        counters.get("reveng.sbdr_probes", 600) * factor
    ) or int(600 * factor)
    counters["reveng.measurements"] = int(
        counters.get("reveng.measurements", 120_000) * factor
    ) or int(120_000 * factor)
    (slowed / "metrics.json").write_text(json.dumps(manifest, indent=2))
    return slowed


def test_same_seed_runs_have_zero_regressions(run_a, run_b):
    comparison = compare_runs(run_a, run_b)
    assert comparison.ok
    assert comparison.regressions == []
    assert comparison.identity_warnings == []
    # Every deterministic delta is neutral; only wall-side ones may move.
    for delta in comparison.deltas:
        if delta.classification != "neutral":
            assert not delta.gated, delta.key


def test_injected_probe_growth_is_flagged_as_regression(run_a, tmp_path):
    slowed = _slowed_copy(run_a, tmp_path)
    comparison = compare_runs(run_a, slowed)
    assert not comparison.ok
    keys = {d.key for d in comparison.regressions}
    assert "reveng.sbdr_probes" in keys
    text = format_comparison(comparison)
    assert "regression" in text
    assert "reveng.sbdr_probes" in text


def test_direction_rules():
    assert direction_for("fuzz.flips_total") == "higher"
    assert direction_for("campaign.successes") == "higher"
    assert direction_for("reveng.sbdr_probes") == "lower"
    assert direction_for("fuzz.campaign.wall_s") == "lower"
    assert direction_for("dram.acts_total") == "none"
    assert is_wall_key("pool.task_wall_seconds.p50")
    assert is_wall_key("cli.fuzz.wall_s")
    assert not is_wall_key("reveng.virtual_s")
    # Resource samples wobble with the host; structural event counts
    # are deterministic and stay gateable.
    assert is_wall_key("health.peak_rss_bytes")
    assert is_wall_key("health.throughput")
    assert not is_wall_key("health.events.worker_death")
    assert direction_for("health.events.worker_death") == "lower"
    assert direction_for("health.events.chunk_retry") == "lower"
    assert direction_for("health.peak_rss_bytes") == "lower"


def _metrics_dir(tmp_path, name, counters):
    run = tmp_path / name
    run.mkdir()
    (run / "metrics.json").write_text(json.dumps(
        {"metrics": {"counters": counters, "gauges": {}, "histograms": {}}}
    ))
    return run


def test_threshold_is_honoured(tmp_path):
    a = _metrics_dir(tmp_path, "a", {"reveng.sbdr_probes": 1000})
    b = _metrics_dir(tmp_path, "b", {"reveng.sbdr_probes": 1030})
    assert compare_runs(a, b, threshold=0.05).ok  # 3% < 5%: neutral
    assert not compare_runs(a, b, threshold=0.01).ok


def test_classification_matrix(tmp_path):
    a = _metrics_dir(tmp_path, "a", {
        "fuzz.flips_total": 10,       # higher is better
        "reveng.sbdr_probes": 1000,   # lower is better
        "dram.acts_total": 5000,      # informational
    })
    b = _metrics_dir(tmp_path, "b", {
        "fuzz.flips_total": 20,       # doubled: improvement
        "reveng.sbdr_probes": 500,    # halved: improvement
        "dram.acts_total": 9000,      # moved, but never gated
    })
    comparison = compare_runs(a, b)
    by_key = {d.key: d for d in comparison.deltas}
    assert by_key["fuzz.flips_total"].classification == "improvement"
    assert by_key["reveng.sbdr_probes"].classification == "improvement"
    assert by_key["dram.acts_total"].classification == "changed"
    assert comparison.ok
    # The reverse diff regresses both directed quantities.
    reverse = compare_runs(b, a)
    assert {d.key for d in reverse.regressions} == {
        "fuzz.flips_total", "reveng.sbdr_probes",
    }


def test_identity_mismatch_warns(run_a, recorded_runs):
    other = recorded_runs(
        "compare-other-seed", *FUZZ_ARGS, "--seed", "77"
    )
    comparison = compare_runs(run_a, other)
    assert any("seed" in w for w in comparison.identity_warnings)


def test_cli_compare_exit_codes(run_a, run_b, tmp_path, capsys):
    assert main(["compare", str(run_a), str(run_b)]) == 0
    out = capsys.readouterr().out
    assert "verdict: 0 regression(s)" in out

    slowed = _slowed_copy(run_a, tmp_path)
    assert main(["compare", str(run_a), str(slowed)]) == 1
    assert "regression" in capsys.readouterr().out

    assert main(["compare", str(run_a), str(tmp_path / "missing")]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_compare_json(run_a, run_b, capsys):
    assert main(["compare", str(run_a), str(run_b), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["regressions"] == []
    assert isinstance(payload["deltas"], list)


def test_cli_compare_unknown_manifest_schema_is_exit_2(
    run_a, tmp_path, capsys
):
    """A future metrics.json schema fails cleanly, not with a traceback."""
    future = tmp_path / "future-run"
    shutil.copytree(run_a, future)
    manifest_path = future / "metrics.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["schema"] = "rhohammer-run-manifest/v99"
    manifest_path.write_text(json.dumps(manifest))
    assert main(["compare", str(run_a), str(future)]) == 2
    err = capsys.readouterr().err
    assert "unknown run manifest schema" in err
    assert "rhohammer-run-manifest/v99" in err
    # a schema-free manifest (pre-tagging fixture) still loads fine
    del manifest["schema"]
    manifest_path.write_text(json.dumps(manifest))
    assert main(["compare", str(run_a), str(future)]) == 0
    capsys.readouterr()
