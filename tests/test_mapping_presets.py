"""Table 4 mapping presets."""

import pytest

from repro.common.errors import MappingError
from repro.mapping.presets import (
    MAPPING_PRESETS,
    MappingKey,
    mapping_for,
    preset_keys,
)


def test_all_cells_covered():
    # Table 4 has 2 schemes x 3 geometries (each scheme shared by 2
    # archs), plus the Section 6 DDR5 extension cell.
    assert len(MAPPING_PRESETS) == 7
    assert len(preset_keys()) == 7


@pytest.mark.parametrize("key", preset_keys())
def test_preset_bank_count_matches_geometry(key: MappingKey):
    mapping = MAPPING_PRESETS[key]
    if key.scheme == "ddr5_alder_raptor":
        expected_banks = 64  # 2 sub-channels x 32 banks
    else:
        expected_banks = 16 if key.size_gib == 8 else 32
    assert mapping.num_banks == expected_banks


@pytest.mark.parametrize("key", preset_keys())
def test_preset_bits_within_physical_space(key: MappingKey):
    mapping = MAPPING_PRESETS[key]
    top = mapping.phys_bits - 1
    assert max(mapping.bank_bit_positions) <= top
    assert mapping.row_bits[1] <= top


@pytest.mark.parametrize("size,expected_rows", [(8, 16), (16, 16), (32, 17)])
def test_row_width_matches_device(size, expected_rows):
    mapping = mapping_for("alder_raptor", size)
    low, high = mapping.row_bits
    assert high - low + 1 == expected_rows


def test_arch_aliases_resolve():
    assert mapping_for("comet_lake", 16) is mapping_for("rocket_lake", 16)
    assert mapping_for("alder_lake", 16) is mapping_for("raptor_lake", 16)


def test_scheme_names_resolve():
    assert mapping_for("comet_rocket", 8).name == "comet_rocket-8g"


def test_unknown_size_raises():
    with pytest.raises(MappingError):
        mapping_for("comet_lake", 64)


def test_new_scheme_has_low_order_function():
    mapping = mapping_for("alder_raptor", 16)
    assert (9, 11, 13) in mapping.canonical_functions()


def test_traditional_scheme_has_pure_row_bits():
    assert len(mapping_for("comet_rocket", 16).pure_row_bits) >= 10


def test_new_scheme_has_no_pure_row_bits():
    for size in (8, 16, 32):
        assert mapping_for("alder_raptor", size).pure_row_bits == ()
