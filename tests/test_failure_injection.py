"""Failure injection: the attack stack must degrade loudly, not wrongly.

Each test breaks one environmental assumption (noisy timer, undersized
pool, dropped privileges, hostile measurement conditions) and checks that
the affected stage either raises its documented error or reports the
failure — never silently returns a wrong mapping or phantom flips.
"""

import pytest

from repro import build_machine
from repro.common.errors import RevEngFailure
from repro.dram.timing import AccessLatency
from repro.reveng import RhoHammerRevEng, TimingOracle, compare_mappings
from repro.reveng.threshold import find_sbdr_threshold
from repro.reveng.validation import cross_validate


def test_hopeless_noise_fails_threshold_detection():
    """With noise drowning the SBDR gap, Step 0 must refuse to proceed."""
    machine = build_machine("comet_lake", "S3", seed=616)
    drowned = AccessLatency(noise_sigma=80.0)
    oracle = TimingOracle.allocate(machine, fraction=0.3, latency=drowned)
    with pytest.raises(RevEngFailure):
        find_sbdr_threshold(oracle, num_pairs=1200)


def test_moderate_noise_still_recovers_or_fails_detectably():
    """Tripled noise: the averaging protocol should still succeed; if it
    does not, cross-validation must flag the recovered mapping."""
    machine = build_machine("comet_lake", "S3", seed=617)
    noisy = AccessLatency(noise_sigma=27.0)
    oracle = TimingOracle.allocate(machine, fraction=0.4, latency=noisy)
    result = RhoHammerRevEng(oracle, collect_heatmap=False).run()
    score = compare_mappings(result.mapping, machine.mapping)
    if not score.fully_correct:
        report = cross_validate(result.mapping, oracle, probes=64,
                                seed_name="noisy-validate")
        assert not report.validated
    else:
        assert score.fully_correct


def test_dropped_privileges_block_pagemap():
    machine = build_machine("raptor_lake", "S3", seed=618)
    space = machine.pagemap.allocate_pool(0.1)
    machine.pagemap.drop_privileges()
    with pytest.raises(PermissionError):
        machine.pagemap.read(space, space.va_of_page(0))


def test_tiny_pool_cannot_find_high_bit_partners():
    """A pool too small to cover the address space makes high-bit pairs
    unfindable; the oracle reports it instead of fabricating timings."""
    machine = build_machine("comet_lake", "S2", seed=619)
    oracle = TimingOracle.allocate(machine, fraction=0.002)
    top_bit = machine.memory.phys_bits - 1
    with pytest.raises(RevEngFailure):
        # With 0.2 % coverage the partner-present probability per draw is
        # ~0.2 %, well under the retry budget's break-even point.
        for _ in range(5):
            oracle.sample_pairs((top_bit,), count=32)


def test_outlier_storm_does_not_create_phantom_bank_functions():
    """Heavy refresh-interference outliers inflate some measurements; the
    16x50 averaging protocol must keep verdicts stable enough that no
    spurious function appears."""
    machine = build_machine("raptor_lake", "S3", seed=620)
    stormy = AccessLatency(outlier_prob=0.05)
    oracle = TimingOracle.allocate(machine, fraction=0.4, latency=stormy)
    result = RhoHammerRevEng(oracle, collect_heatmap=False).run()
    score = compare_mappings(result.mapping, machine.mapping)
    assert score.spurious_functions == ()


# ----------------------------------------------------------------------
# Worker-pool crash robustness (persistent executor backend)
# ----------------------------------------------------------------------
import glob
import os
import signal

from repro.engine import PersistentPoolBackend, SerialBackend
from repro.engine.executor import SEGMENT_PREFIX


def _shm_segments():
    return set(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


def _assert_reaped(pids):
    """No worker may survive as a live process or an unreaped zombie."""
    for pid in pids:
        stat = f"/proc/{pid}/stat"
        if os.path.exists(stat):
            with open(stat) as fh:
                state = fh.read().rsplit(")", 1)[1].split()[0]
            assert state == "Z" or not os.path.exists(stat), (
                f"worker {pid} still alive in state {state}"
            )
            assert state != "Z", f"worker {pid} left as a zombie"


def test_worker_sigkill_once_is_retried_and_completes(tmp_path):
    """A worker dying mid-batch costs one bounded retry, not the batch."""
    flag = tmp_path / "crashed-once"

    def crash_once(ctx, task):
        if task == 5 and not flag.exists():
            flag.write_text("x")
            os.kill(os.getpid(), signal.SIGKILL)
        return task * 10

    before = _shm_segments()
    with PersistentPoolBackend(workers=3, chunk_size=2) as backend:
        report = backend.map(crash_once, range(12))
        pids = backend.worker_pids()
    assert report.results == [t * 10 for t in range(12)]
    assert report.errors == []
    assert report.retries >= 1
    assert not report.degraded
    _assert_reaped(pids)
    assert _shm_segments() <= before


def test_worker_sigkill_always_degrades_to_serial(tmp_path):
    """A chunk that kills every worker it lands on exhausts its retry
    budget; the pool stops feeding and the parent finishes serially."""
    parent = os.getpid()

    def crash_always(ctx, task):
        if task == 5 and os.getpid() != parent:
            os.kill(os.getpid(), signal.SIGKILL)
        return task * 10

    before = _shm_segments()
    with PersistentPoolBackend(workers=3, chunk_size=2) as backend:
        report = backend.map(crash_always, range(12))
        pids = backend.worker_pids()
    assert report.results == [t * 10 for t in range(12)]
    assert report.degraded
    assert any("degraded" in note for note in report.notes())
    _assert_reaped(pids)
    assert _shm_segments() <= before


def test_worker_sigkill_keeps_trace_file_uncorrupted(tmp_path):
    """A worker SIGKILL mid-batch must not corrupt the buffered trace.

    Spans are buffered and written as whole-line chunks by the parent
    only, so the file must stay *strictly* parseable, every opened span
    must close, and the batch plus all replayed task spans must be
    present — a crash can cost at most one unflushed buffer, and pool
    teardown flushes that buffer before this test reads the file.
    """
    from repro.obs import telemetry_session
    from repro.obs.trace import read_trace

    flag = tmp_path / "crashed-once"
    trace_path = tmp_path / "trace.jsonl"

    def crash_once(ctx, task):
        if task == 5 and not flag.exists():
            flag.write_text("x")
            os.kill(os.getpid(), signal.SIGKILL)
        return task * 10

    with telemetry_session(trace_path=str(trace_path)):
        with PersistentPoolBackend(workers=3, chunk_size=2) as backend:
            report = backend.map(crash_once, range(12))
    assert report.results == [t * 10 for t in range(12)]
    assert report.retries >= 1
    records = list(read_trace(trace_path))  # strict: no torn lines
    begins = sorted(r["id"] for r in records if r.get("ph") == "B")
    ends = sorted(r["id"] for r in records if r.get("ph") == "E")
    assert begins == ends  # every opened span closed
    names = [r.get("name") for r in records]
    assert "pool.batch" in names
    assert names.count("pool.task") == 12  # one replayed span per task


def test_worker_sigkill_emits_health_events_and_keeps_determinism(tmp_path):
    """A SIGKILLed worker must surface as structured fleet telemetry —
    a ``worker_death`` health event plus a ``chunk_retry`` — while the
    merged result stays bit-identical to an undisturbed serial run."""
    from repro.obs import OBS, telemetry_session
    from repro.obs.trace import read_trace

    with SerialBackend() as backend:
        serial = backend.map(lambda ctx, task: task * 10, range(12))

    flag = tmp_path / "crashed-once"
    trace_path = tmp_path / "trace.jsonl"

    def crash_once(ctx, task):
        if task == 5 and not flag.exists():
            flag.write_text("x")
            os.kill(os.getpid(), signal.SIGKILL)
        return task * 10

    with telemetry_session(trace_path=str(trace_path), metrics=True) as obs:
        with PersistentPoolBackend(workers=3, chunk_size=2) as backend:
            report = backend.map(crash_once, range(12))
        counters = obs.metrics.snapshot()["counters"]
    assert report.results == serial.results
    assert report.retries >= 1 and not report.degraded

    events = [
        (r.get("wall") or {}).get("kind")
        for r in read_trace(trace_path)
        if r.get("ev") == "health"
    ]
    assert events.count("worker_spawn") >= 3  # 3 initial + respawn(s)
    assert "worker_death" in events
    assert "chunk_retry" in events
    assert counters["health.worker_death"] >= 1
    assert counters["health.chunk_retry"] >= 1
    assert counters["health.worker_spawn"] >= 3
    assert not OBS.enabled


def test_raising_task_is_captured_not_fatal():
    def explode(ctx, task):
        if task == 3:
            raise ValueError("poisoned task")
        return task

    with PersistentPoolBackend(workers=2, chunk_size=2) as backend:
        report = backend.map(explode, range(6))
    assert report.results == [0, 1, 2, None, 4, 5]
    assert [err.index for err in report.errors] == [3]
    assert "ValueError" in report.errors[0].detail
    assert not report.degraded


def test_interrupt_mid_batch_tears_down_pool_and_shm():
    """KeyboardInterrupt while a batch is in flight must still unlink
    every shared-memory segment and reap every worker."""
    def interrupting_progress(done, total):
        if done >= 2:
            raise KeyboardInterrupt

    def slow(ctx, task):
        return task

    before = _shm_segments()
    backend = PersistentPoolBackend(
        workers=3, chunk_size=1, progress=interrupting_progress
    )
    with pytest.raises(KeyboardInterrupt):
        backend.map(slow, range(30))
    pids = backend.worker_pids()
    assert pids == []  # close() already ran via the BaseException guard
    assert _shm_segments() <= before
