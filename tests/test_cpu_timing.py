"""Throughput model: per-iteration costs and memory bounds."""

import pytest

from repro.cpu.isa import (
    Barrier,
    HammerInstruction,
    HammerKernelConfig,
    baseline_load_config,
    rhohammer_config,
)
from repro.cpu.platform import platform_by_name
from repro.cpu.timing import CHANNEL_ACT_FLOOR_NS, ThroughputModel


@pytest.fixture(scope="module")
def model() -> ThroughputModel:
    return ThroughputModel(platform_by_name("raptor_lake"))


def test_prefetch_cheaper_than_load_at_full_miss(model):
    prefetch = model.cpu_cost_ns(HammerKernelConfig(), miss_rate=1.0)
    load = model.cpu_cost_ns(baseline_load_config(), miss_rate=1.0)
    assert load > prefetch * 1.5


def test_prefetch_cost_independent_of_miss_rate(model):
    config = HammerKernelConfig()
    assert model.cpu_cost_ns(config, 0.1) == model.cpu_cost_ns(config, 1.0)


def test_load_cost_rises_with_miss_rate(model):
    config = baseline_load_config()
    assert model.cpu_cost_ns(config, 1.0) > model.cpu_cost_ns(config, 0.1)


def test_multibank_improves_load_mlp(model):
    one = model.cpu_cost_ns(baseline_load_config(num_banks=1), 1.0)
    four = model.cpu_cost_ns(baseline_load_config(num_banks=4), 1.0)
    assert four < one


def test_lfence_load_pays_full_dram_latency(model):
    config = HammerKernelConfig(
        instruction=HammerInstruction.LOAD, barrier=Barrier.LFENCE
    )
    cost = model.barrier_cost_ns(config)
    assert cost == model.platform.dram_latency_ns


def test_barrier_cost_ordering(model):
    """CPUID > MFENCE > LFENCE(prefetch) > none — Table 3's time column."""
    def cost(barrier):
        return model.barrier_cost_ns(HammerKernelConfig(barrier=barrier))
    assert cost(Barrier.CPUID) > cost(Barrier.MFENCE)
    assert cost(Barrier.MFENCE) > cost(Barrier.LFENCE)
    assert cost(Barrier.LFENCE) > cost(Barrier.NONE) == 0.0


def test_nops_add_linear_cost(model):
    base = model.cpu_cost_ns(HammerKernelConfig(nop_count=0), 1.0)
    padded = model.cpu_cost_ns(HammerKernelConfig(nop_count=100), 1.0)
    per_nop = (padded - base) / 100
    assert per_nop == pytest.approx(model.platform.nop_cost_ns)


def test_obfuscation_adds_overhead(model):
    plain = model.cpu_cost_ns(HammerKernelConfig(), 1.0)
    obfuscated = model.cpu_cost_ns(
        HammerKernelConfig(obfuscate_control_flow=True), 1.0
    )
    assert obfuscated - plain == pytest.approx(
        model.platform.obfuscation_overhead_ns
    )


def test_single_bank_hits_the_row_cycle_bound(model):
    breakdown = model.iteration_cost(HammerKernelConfig(num_banks=1), 1.0)
    assert breakdown.memory_bound
    assert breakdown.total_ns == pytest.approx(model.timing.t_rc)


def test_bank_bound_divides_with_interleaving(model):
    one = model.iteration_cost(HammerKernelConfig(num_banks=1), 1.0)
    four = model.iteration_cost(HammerKernelConfig(num_banks=4), 1.0)
    assert four.bank_bound_ns == pytest.approx(one.bank_bound_ns / 4)


def test_memory_bounds_scale_with_miss_rate(model):
    full = model.iteration_cost(HammerKernelConfig(num_banks=1), 1.0)
    half = model.iteration_cost(HammerKernelConfig(num_banks=1), 0.5)
    assert half.bank_bound_ns == pytest.approx(full.bank_bound_ns / 2)


def test_channel_floor_binds_at_many_banks(model):
    breakdown = model.iteration_cost(
        rhohammer_config(nop_count=0, num_banks=16), 1.0
    )
    assert breakdown.channel_bound_ns == pytest.approx(CHANNEL_ACT_FLOOR_NS)


def test_activation_rate_accounts_for_drops(model):
    config = HammerKernelConfig(num_banks=4)
    full = model.activation_rate_per_sec(config, 1.0)
    half = model.activation_rate_per_sec(config, 0.5)
    assert half < full
