"""The deterministic parallel experiment engine (repro.engine).

The engine's contract is strong: for a fixed seed, every backend at any
worker count must be *bit-identical* to :class:`SerialBackend` for every
consumer (fuzzing, sweeping, repeated reverse engineering) — in results
AND in merged metric snapshots — failures of individual tasks must not
take down the batch, and a broken pool must degrade to serial execution
rather than lose results.
"""

import pytest

from repro import QUICK_SCALE, RunBudget, rhohammer_config
from repro.common.errors import CalibrationError
from repro.engine import (
    ExperimentSpec,
    ForkBatchBackend,
    PersistentPoolBackend,
    SerialBackend,
    create_backend,
)
from repro.engine.executor import factory as factory_module
from repro.engine.executor import persistent as persistent_module
from repro.engine.executor.base import ExecutorBackend
from repro.exploit.endtoend import canonical_compact_pattern
from repro.hammer.session import HammerSession
from repro.obs import OBS
from repro.patterns.fuzzer import FuzzingCampaign
from repro.patterns.sweep import sweep_pattern
from repro.reveng import repeated_reveng

CONFIG = rhohammer_config(nop_count=60, num_banks=3)


# ----------------------------------------------------------------------
# RunBudget / ExperimentSpec
# ----------------------------------------------------------------------
def test_budget_resolves_hours_capped_and_trials():
    assert RunBudget(hours=1.0).resolve_trials(QUICK_SCALE) == \
        QUICK_SCALE.patterns_for_hours(1.0)
    assert RunBudget(hours=1.0, max_trials=5).resolve_trials(QUICK_SCALE) == 5
    assert RunBudget.trials(7).resolve_trials(QUICK_SCALE) == 7
    assert RunBudget().resolve_trials(QUICK_SCALE, default_hours=2.0) == \
        QUICK_SCALE.patterns_for_hours(2.0)


def test_budget_validates_inputs():
    with pytest.raises(CalibrationError):
        RunBudget(hours=0)
    with pytest.raises(CalibrationError):
        RunBudget(max_trials=0)
    with pytest.raises(CalibrationError):
        RunBudget(workers=0)
    with pytest.raises(CalibrationError):
        RunBudget(backend="threads")
    with pytest.raises(CalibrationError):
        RunBudget().resolve_trials(QUICK_SCALE)


def test_spec_derives_stable_task_streams(comet_machine):
    spec = ExperimentSpec(comet_machine, CONFIG, QUICK_SCALE, "unit")
    a = spec.rng("rows").spawn("task", 3)
    b = spec.rng("rows").spawn("task", 3)
    assert [s.seed for s in a] == [s.seed for s in b]
    assert len({s.seed for s in a}) == 3


# ----------------------------------------------------------------------
# Backend mechanics
# ----------------------------------------------------------------------
def _square(ctx, task):
    return task * task


def _backends():
    return (
        SerialBackend(),
        ForkBatchBackend(workers=4),
        PersistentPoolBackend(workers=4),
    )


def test_backends_satisfy_protocol_and_order_results():
    tasks = list(range(20))
    expected = [t * t for t in tasks]
    for backend in _backends():
        assert isinstance(backend, ExecutorBackend)
        with backend:
            report = backend.map(_square, tasks)
        assert report.results == expected, backend.name
        assert report.ok and not report.degraded, backend.name
        assert report.backend == backend.name


def _explode_on_two(ctx, task):
    if task == 2:
        raise RuntimeError("injected failure")
    return task


def test_backends_capture_task_errors_and_keep_partial_results():
    for backend in _backends():
        with backend:
            report = backend.map(_explode_on_two, range(5))
        assert report.results == [0, 1, None, 3, 4], backend.name
        assert [err.index for err in report.errors] == [2], backend.name
        assert "RuntimeError" in report.errors[0].detail
        assert any("injected failure" in note for note in report.notes())


def test_persistent_pool_reuses_workers_across_batches():
    with PersistentPoolBackend(workers=3) as backend:
        first = backend.map(_square, range(9))
        pids = backend.worker_pids()
        second = backend.map(_square, range(9, 18))
        assert backend.worker_pids() == pids
    assert first.results == [t * t for t in range(9)]
    assert second.results == [t * t for t in range(9, 18)]


def test_persistent_pool_degrades_when_fork_machinery_breaks(monkeypatch):
    def broken_context(method):
        raise OSError("no fork for you")

    monkeypatch.setattr(
        persistent_module.multiprocessing, "get_context", broken_context
    )
    with PersistentPoolBackend(workers=4) as backend:
        report = backend.map(_square, range(6))
    assert report.degraded
    assert report.results == [t * t for t in range(6)]
    assert any("degraded" in note for note in report.notes())


def test_create_backend_caps_auto_workers_to_host_cpus(monkeypatch):
    monkeypatch.setattr(factory_module, "default_workers", lambda: 1)

    def no_fork(method):  # the cap must route serial before any fork
        raise AssertionError("single-core host must not fork")

    monkeypatch.setattr(
        persistent_module.multiprocessing, "get_context", no_fork
    )
    with create_backend(budget=RunBudget.trials(6, workers=16)) as backend:
        assert isinstance(backend, SerialBackend)
        report = backend.map(_square, range(6))
    assert not report.degraded
    assert report.workers == 1
    assert report.results == [t * t for t in range(6)]


def test_create_backend_honours_explicit_choices(monkeypatch):
    monkeypatch.setattr(factory_module, "default_workers", lambda: 8)
    auto = create_backend(budget=RunBudget.trials(4, workers=4))
    assert isinstance(auto, PersistentPoolBackend)
    auto.close()
    serial = create_backend(
        budget=RunBudget.trials(4, workers=4, backend="serial")
    )
    assert isinstance(serial, SerialBackend)
    fork = create_backend(
        budget=RunBudget.trials(4, workers=4, backend="fork")
    )
    assert isinstance(fork, ForkBatchBackend)
    fork.close()
    with pytest.raises(ValueError):
        create_backend(workers=2, backend="threads")


def test_backend_init_builds_context_once_per_process():
    calls = []

    def init():
        calls.append(1)
        return "ctx"

    def use(ctx, task):
        assert ctx == "ctx"
        return task

    with SerialBackend() as backend:
        report = backend.map(use, range(4), init=init)
    assert report.ok and len(calls) == 1


# ----------------------------------------------------------------------
# Parallel determinism: the acceptance criterion
# ----------------------------------------------------------------------
def _fuzz_report(machine, workers, backend="auto"):
    campaign = FuzzingCampaign(
        machine=machine,
        config=CONFIG,
        scale=QUICK_SCALE,
        trials_per_pattern=1,
        seed_name="det",
    )
    return campaign.execute(
        RunBudget(max_trials=6, workers=workers, backend=backend)
    )


def test_fuzzing_is_bit_identical_across_backends(comet_machine):
    serial = _fuzz_report(comet_machine, workers=1, backend="serial")
    parallel = _fuzz_report(comet_machine, workers=4, backend="persistent")
    assert serial.total_flips == parallel.total_flips
    assert serial.best_pattern_flips == parallel.best_pattern_flips
    assert serial.effective_patterns == parallel.effective_patterns
    assert serial.patterns_tried == parallel.patterns_tried
    assert serial.mean_miss_rate == parallel.mean_miss_rate
    assert serial.notes == parallel.notes == ()
    assert (serial.best_pattern is None) == (parallel.best_pattern is None)
    if serial.best_pattern is not None:
        assert serial.best_pattern.describe() == \
            parallel.best_pattern.describe()
        assert (serial.best_pattern.slots == parallel.best_pattern.slots).all()


def _sweep_report(machine, workers, backend="auto", batch_locations="auto"):
    return sweep_pattern(
        machine,
        CONFIG,
        canonical_compact_pattern(),
        RunBudget(
            max_trials=8,
            workers=workers,
            backend=backend,
            batch_locations=batch_locations,
        ),
        QUICK_SCALE,
        seed_name="det-sweep",
    )


def test_sweep_is_bit_identical_across_backends(comet_machine):
    serial = _sweep_report(comet_machine, workers=1, backend="serial")
    parallel = _sweep_report(comet_machine, workers=4, backend="persistent")
    assert serial.base_rows == parallel.base_rows
    assert (serial.flips_per_location == parallel.flips_per_location).all()
    assert (serial.virtual_minutes == parallel.virtual_minutes).all()
    assert serial.notes == parallel.notes == ()


def test_repeated_reveng_is_bit_identical_across_backends():
    serial = repeated_reveng(
        "comet_lake", budget=RunBudget.trials(2, workers=1), base_seed=42
    )
    parallel = repeated_reveng(
        "comet_lake",
        budget=RunBudget.trials(2, workers=2, backend="persistent"),
        base_seed=42,
    )
    assert serial.outcomes == parallel.outcomes
    assert serial.all_correct
    assert serial.mean_runtime_seconds == parallel.mean_runtime_seconds


def _no_wall(section):
    """Drop wall-clock, pool-bookkeeping and fleet-health keys; they
    vary by schedule and worker topology."""
    return {
        k: v for k, v in section.items()
        if "wall" not in k
        and not k.startswith("pool.")
        and not k.startswith("health.")
    }


def test_persistent_metric_snapshots_match_serial(comet_machine):
    """The merged OBS snapshot — counters AND float histogram sums — must
    be bit-identical between serial and the persistent pool at every
    worker count (journal replay reproduces the exact serial
    accumulation order, and phase-batched hot paths flush within task
    boundaries so chunking never splits a batch)."""
    snapshots = []
    for backend, workers in (
        ("serial", 1), ("persistent", 2), ("persistent", 3)
    ):
        OBS.configure(metrics=True)
        try:
            _fuzz_report(comet_machine, workers=workers, backend=backend)
            snapshots.append(OBS.metrics.snapshot())
        finally:
            OBS.shutdown()
    serial = snapshots[0]
    for parallel in snapshots[1:]:
        assert _no_wall(serial["counters"]) == _no_wall(parallel["counters"])
        assert _no_wall(serial["histograms"]) == \
            _no_wall(parallel["histograms"])


# ----------------------------------------------------------------------
# Failure injection through a real consumer
# ----------------------------------------------------------------------
def test_sweep_worker_failure_keeps_partial_results(
    fresh_comet, monkeypatch
):
    """Per-location dispatch (batching off): only the poisoned location
    is lost."""
    clean = _sweep_report(fresh_comet, workers=1, batch_locations="off")
    poisoned_row = clean.base_rows[2]
    original = HammerSession.run_pattern

    def poisoned(self, pattern, base_row, *args, **kwargs):
        if base_row == poisoned_row:
            raise RuntimeError("injected mid-batch failure")
        return original(self, pattern, base_row, *args, **kwargs)

    monkeypatch.setattr(HammerSession, "run_pattern", poisoned)
    report = _sweep_report(
        fresh_comet, workers=3, backend="persistent", batch_locations="off"
    )
    assert report.base_rows == clean.base_rows
    assert report.flips_per_location[2] == 0
    for i in (0, 1, 3, 4, 5, 6, 7):
        assert report.flips_per_location[i] == clean.flips_per_location[i]
    assert any(
        "location 2" in note and "injected" in note for note in report.notes
    )


def test_sweep_chunk_failure_loses_only_that_chunk(
    fresh_comet, monkeypatch
):
    """Batched dispatch: a failing location costs its chunk, no more."""
    clean = _sweep_report(fresh_comet, workers=1, batch_locations="off")
    poisoned_row = clean.base_rows[2]
    original = HammerSession.run_pattern_batch

    def poisoned(self, pattern, base_rows, *args, **kwargs):
        if poisoned_row in [int(r) for r in base_rows]:
            raise RuntimeError("injected mid-chunk failure")
        return original(self, pattern, base_rows, *args, **kwargs)

    monkeypatch.setattr(HammerSession, "run_pattern_batch", poisoned)
    report = _sweep_report(
        fresh_comet, workers=3, backend="persistent", batch_locations=4
    )
    assert report.base_rows == clean.base_rows
    # Locations 0-3 share the poisoned chunk and are all lost ...
    assert (report.flips_per_location[:4] == 0).all()
    # ... while the other chunk's locations survive untouched.
    for i in (4, 5, 6, 7):
        assert report.flips_per_location[i] == clean.flips_per_location[i]
    assert any(
        "chunk 0" in note and "injected" in note for note in report.notes
    )
