"""Branch predictor structures and the obfuscation engine."""

from repro.common.rng import RngStream
from repro.cpu.branch import (
    BranchTargetBuffer,
    ObfuscationEngine,
    PatternHistoryTable,
)


def test_btb_learns_stable_target():
    btb = BranchTargetBuffer()
    pc, target = 0x400000, 0x401000
    assert btb.predict(pc) is None
    btb.update(pc, target)
    assert btb.predict(pc) == target


def test_pht_saturating_counters_learn_taken_loop():
    pht = PatternHistoryTable()
    for _ in range(100):
        pht.update(0x400000, taken=True)
    assert pht.accuracy > 0.9


def test_engine_fixed_path_is_predictable():
    engine = ObfuscationEngine(rng=RngStream(1))
    btb_rate, pht_acc = engine.simulate_loop(2048, obfuscated=False)
    assert btb_rate > 0.95
    assert pht_acc > 0.95


def test_engine_obfuscation_confuses_predictors():
    engine = ObfuscationEngine(rng=RngStream(2))
    btb_rate, pht_acc = engine.simulate_loop(2048, obfuscated=True)
    # BTB thrashes across 8 entropy-selected paths; PHT decays toward
    # coin-flipping on the data-dependent direction.
    assert btb_rate < 0.95
    assert pht_acc < 0.8


def test_residual_window_shrinks_under_obfuscation():
    engine = ObfuscationEngine(rng=RngStream(3))
    full = engine.residual_branch_window(100.0, obfuscated=False)
    confused = engine.residual_branch_window(100.0, obfuscated=True)
    assert confused < full * 0.8
    assert full > 90.0
