"""Algorithm 1: full mapping recovery on every architecture."""

import pytest

from repro import build_machine
from repro.reveng import RhoHammerRevEng, TimingOracle, compare_mappings


@pytest.mark.parametrize(
    "platform,dimm",
    [
        ("comet_lake", "S3"),
        ("rocket_lake", "S2"),
        ("alder_lake", "S3"),
        ("raptor_lake", "M1"),
    ],
)
def test_recovers_ground_truth(platform, dimm):
    machine = build_machine(platform, dimm, seed=555)
    oracle = TimingOracle.allocate(machine, fraction=0.4)
    result = RhoHammerRevEng(oracle, collect_heatmap=False).run()
    score = compare_mappings(result.mapping, machine.mapping)
    assert score.fully_correct, (
        f"recovered {result.mapping.describe()} "
        f"vs truth {machine.mapping.describe()}"
    )


def test_pure_row_bits_found_on_traditional_mapping(comet_machine):
    oracle = TimingOracle.allocate(comet_machine, fraction=0.4,
                                   seed_name="alg-pure")
    result = RhoHammerRevEng(oracle, collect_heatmap=False).run()
    assert set(result.pure_row_bits) == set(comet_machine.mapping.pure_row_bits)


def test_no_pure_row_bits_on_new_mapping(raptor_machine):
    oracle = TimingOracle.allocate(raptor_machine, fraction=0.4,
                                   seed_name="alg-none")
    result = RhoHammerRevEng(oracle, collect_heatmap=False).run()
    assert result.pure_row_bits == ()


def test_quartet_finds_low_order_function(raptor_machine):
    oracle = TimingOracle.allocate(raptor_machine, fraction=0.4,
                                   seed_name="alg-quartet")
    result = RhoHammerRevEng(oracle, collect_heatmap=False).run()
    assert (9, 11, 13) in result.mapping.canonical_functions()
    merged = {frozenset(p) for p in result.quartet_pairs}
    assert merged == {
        frozenset((9, 11)), frozenset((9, 13)), frozenset((11, 13))
    }


def test_runtime_is_seconds_scale(raptor_machine):
    """Table 5: rhoHammer completes within ~10 attacker-seconds."""
    oracle = TimingOracle.allocate(raptor_machine, fraction=0.4,
                                   seed_name="alg-time")
    result = RhoHammerRevEng(oracle, collect_heatmap=False).run()
    assert result.runtime_seconds < 12.0
    assert result.measurements > 0


def test_heatmap_collection(comet_machine):
    oracle = TimingOracle.allocate(comet_machine, fraction=0.4,
                                   seed_name="alg-heat")
    result = RhoHammerRevEng(oracle, collect_heatmap=True).run()
    assert len(result.heatmap) > 100
    # Duet pairs must show slow timings in the collected heatmap.
    thres = result.threshold.threshold_ns
    for pair in result.duet_pairs:
        assert result.heatmap[pair] > thres
