"""Cross-validation of recovered mappings."""

import pytest

from repro.mapping.functions import AddressMapping, BankFunction
from repro.mapping.presets import mapping_for
from repro.reveng import RhoHammerRevEng, TimingOracle
from repro.reveng.validation import cross_validate, predict_sbdr


# ----------------------------------------------------------------------
# The prediction oracle
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def comet16():
    return mapping_for("comet_lake", 16)


def test_predict_single_pure_row_bit_is_slow(comet16):
    assert predict_sbdr(comet16, (25,))


def test_predict_bank_bit_flip_is_fast(comet16):
    assert not predict_sbdr(comet16, (14,))  # one function bit -> bank moves


def test_predict_function_pair_is_slow(comet16):
    assert predict_sbdr(comet16, (14, 18))  # same function, row bit included


def test_predict_low_function_pair_is_fast(comet16):
    assert not predict_sbdr(comet16, (6, 13))  # bank same, row same


def test_predict_cross_function_pair_is_fast(comet16):
    assert not predict_sbdr(comet16, (14, 19))  # two functions change


def test_predict_pure_column_is_fast(comet16):
    assert not predict_sbdr(comet16, (7,))


# ----------------------------------------------------------------------
# End-to-end validation
# ----------------------------------------------------------------------
def test_correct_mapping_validates(raptor_machine):
    oracle = TimingOracle.allocate(raptor_machine, fraction=0.4,
                                   seed_name="val-good")
    report = cross_validate(raptor_machine.mapping, oracle, probes=48)
    assert report.validated
    assert report.accuracy == 1.0


def test_recovered_mapping_validates(comet_machine):
    oracle = TimingOracle.allocate(comet_machine, fraction=0.4,
                                   seed_name="val-rec")
    recovered = RhoHammerRevEng(oracle, collect_heatmap=False).run()
    report = cross_validate(recovered.mapping, oracle, probes=48,
                            seed_name="val-rec2")
    assert report.validated


def test_wrong_mapping_fails_validation(comet_machine):
    truth = comet_machine.mapping
    # Corrupt one function: (6, 13) -> (7, 13).
    functions = [
        BankFunction((7, 13)) if f.bits == (6, 13) else f
        for f in truth.bank_functions
    ]
    wrong = AddressMapping(
        bank_functions=tuple(functions),
        row_bits=truth.row_bits,
        phys_bits=truth.phys_bits,
    )
    oracle = TimingOracle.allocate(comet_machine, fraction=0.4,
                                   seed_name="val-bad")
    report = cross_validate(wrong, oracle, probes=64)
    assert not report.validated
    assert len(report.disagreements) > 0


def test_wrong_row_range_fails_validation(raptor_machine):
    """A mapping that *misses* row bits mispredicts same-function probes
    whose only row bit falls in the missed range.  (Extending the range
    over function-covered column bits is observationally equivalent and
    rightly passes — no B_diff can expose it through SBDR timing.)"""
    truth = raptor_machine.mapping
    low, high = truth.row_bits
    wrong = AddressMapping(
        bank_functions=truth.bank_functions,
        row_bits=(low + 3, high),  # claims rows start three bits higher
        phys_bits=truth.phys_bits,
    )
    oracle = TimingOracle.allocate(raptor_machine, fraction=0.4,
                                   seed_name="val-row")
    report = cross_validate(wrong, oracle, probes=96)
    assert not report.validated
