"""Per-cell flip threshold population."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.cells import CellPopulation


def make_population(**kwargs) -> CellPopulation:
    defaults = dict(
        dimm_uid="TEST", median_threshold=50_000.0, weak_cell_density=0.5
    )
    defaults.update(kwargs)
    return CellPopulation(**defaults)


def test_profiles_are_deterministic():
    a = make_population().profile(3, 1000)
    b = make_population().profile(3, 1000)
    assert np.array_equal(a.thresholds, b.thresholds)
    assert np.array_equal(a.bit_indices, b.bit_indices)


def test_profiles_differ_across_rows():
    pop = make_population()
    a = pop.profile(3, 1000)
    b = pop.profile(3, 1001)
    assert not np.array_equal(a.bit_indices, b.bit_indices)


def test_profiles_differ_across_dimms():
    a = make_population(dimm_uid="A").profile(0, 5)
    b = make_population(dimm_uid="B").profile(0, 5)
    assert not np.array_equal(a.thresholds, b.thresholds)


def test_thresholds_sorted_ascending():
    prof = make_population().profile(0, 42)
    assert np.all(np.diff(prof.thresholds) >= 0)


def test_zero_density_is_invulnerable():
    pop = make_population(weak_cell_density=0.0)
    assert pop.flip_count_for(0, 7, 1e12) == 0
    assert pop.flips_for(0, 7, 1e12) == []


def test_no_flips_below_all_thresholds():
    pop = make_population()
    assert pop.flip_count_for(0, 9, 1.0) == 0


def test_all_cells_flip_at_huge_disturbance():
    pop = make_population()
    prof = pop.profile(0, 9)
    assert pop.flip_count_for(0, 9, 1e15) == prof.thresholds.size


def test_flip_events_match_count():
    pop = make_population()
    peak = 60_000.0
    events = pop.flips_for(2, 11, peak)
    assert len(events) == pop.flip_count_for(2, 11, peak)
    for event in events:
        assert event.bank == 2
        assert event.row == 11
        assert 0 <= event.bit_index < 65536
        assert event.direction in (0, 1)


def test_bit_indices_unique_within_row():
    prof = make_population(weak_cell_density=1.0).profile(0, 3)
    assert len(set(prof.bit_indices.tolist())) == prof.bit_indices.size


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        make_population(median_threshold=0.0)
    with pytest.raises(ValueError):
        make_population(weak_cell_density=1.5)


@settings(max_examples=40, deadline=None)
@given(
    peak_a=st.floats(min_value=0, max_value=1e7),
    peak_b=st.floats(min_value=0, max_value=1e7),
)
def test_flip_count_monotone_in_peak(peak_a, peak_b):
    pop = make_population()
    lo, hi = sorted((peak_a, peak_b))
    assert pop.flip_count_for(1, 77, lo) <= pop.flip_count_for(1, 77, hi)


def test_cache_reuses_profiles():
    pop = make_population()
    first = pop.profile(0, 1)
    assert pop.profile(0, 1) is first
