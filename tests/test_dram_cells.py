"""Per-cell flip threshold population."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.cells import CellPopulation


def make_population(**kwargs) -> CellPopulation:
    defaults = dict(
        dimm_uid="TEST", median_threshold=50_000.0, weak_cell_density=0.5
    )
    defaults.update(kwargs)
    return CellPopulation(**defaults)


def test_profiles_are_deterministic():
    a = make_population().profile(3, 1000)
    b = make_population().profile(3, 1000)
    assert np.array_equal(a.thresholds, b.thresholds)
    assert np.array_equal(a.bit_indices, b.bit_indices)


def test_profiles_differ_across_rows():
    pop = make_population()
    a = pop.profile(3, 1000)
    b = pop.profile(3, 1001)
    assert not np.array_equal(a.bit_indices, b.bit_indices)


def test_profiles_differ_across_dimms():
    a = make_population(dimm_uid="A").profile(0, 5)
    b = make_population(dimm_uid="B").profile(0, 5)
    assert not np.array_equal(a.thresholds, b.thresholds)


def test_thresholds_sorted_ascending():
    prof = make_population().profile(0, 42)
    assert np.all(np.diff(prof.thresholds) >= 0)


def test_zero_density_is_invulnerable():
    pop = make_population(weak_cell_density=0.0)
    assert pop.flip_count_for(0, 7, 1e12) == 0
    assert pop.flips_for(0, 7, 1e12) == []


def test_no_flips_below_all_thresholds():
    pop = make_population()
    assert pop.flip_count_for(0, 9, 1.0) == 0


def test_all_cells_flip_at_huge_disturbance():
    pop = make_population()
    prof = pop.profile(0, 9)
    assert pop.flip_count_for(0, 9, 1e15) == prof.thresholds.size


def test_flip_events_match_count():
    pop = make_population()
    peak = 60_000.0
    events = pop.flips_for(2, 11, peak)
    assert len(events) == pop.flip_count_for(2, 11, peak)
    for event in events:
        assert event.bank == 2
        assert event.row == 11
        assert 0 <= event.bit_index < 65536
        assert event.direction in (0, 1)


def test_bit_indices_unique_within_row():
    prof = make_population(weak_cell_density=1.0).profile(0, 3)
    assert len(set(prof.bit_indices.tolist())) == prof.bit_indices.size


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        make_population(median_threshold=0.0)
    with pytest.raises(ValueError):
        make_population(weak_cell_density=1.5)


@settings(max_examples=40, deadline=None)
@given(
    peak_a=st.floats(min_value=0, max_value=1e7),
    peak_b=st.floats(min_value=0, max_value=1e7),
)
def test_flip_count_monotone_in_peak(peak_a, peak_b):
    pop = make_population()
    lo, hi = sorted((peak_a, peak_b))
    assert pop.flip_count_for(1, 77, lo) <= pop.flip_count_for(1, 77, hi)


def test_cache_reuses_profiles():
    pop = make_population()
    first = pop.profile(0, 1)
    assert pop.profile(0, 1) is first


def test_cache_is_lru_bounded():
    pop = make_population(max_cached_profiles=4)
    for row in range(6):
        pop.profile(0, row)
    assert pop.profiles_cached == 4
    assert pop.profile_evictions == 2


def test_cache_evicts_least_recently_used():
    pop = make_population(max_cached_profiles=2)
    a = pop.profile(0, 1)
    pop.profile(0, 2)
    assert pop.profile(0, 1) is a  # touch: row 1 becomes most recent
    pop.profile(0, 3)  # evicts row 2, not row 1
    assert pop.profile(0, 1) is a
    assert pop.profile_evictions == 1


def test_eviction_never_changes_profiles():
    bounded = make_population(max_cached_profiles=1)
    unbounded = make_population()
    for row in (5, 6, 5, 7, 5):
        got = bounded.profile(0, row)
        want = unbounded.profile(0, row)
        assert np.array_equal(got.thresholds, want.thresholds)
        assert np.array_equal(got.bit_indices, want.bit_indices)


def test_invalid_cache_bound_rejected():
    with pytest.raises(ValueError):
        make_population(max_cached_profiles=0)


def test_batched_flip_counts_match_scalar_path():
    pop = make_population()
    rng = np.random.default_rng(31)
    rows = rng.integers(0, 5000, size=200)
    peaks = np.where(
        rng.random(200) < 0.3, 0.0, rng.uniform(0.0, 2e5, size=200)
    )
    batched = pop.flip_counts_for(4, rows, peaks)
    scalar = [
        pop.flip_count_for(4, int(r), float(p))
        for r, p in zip(rows, peaks)
    ]
    assert batched.tolist() == scalar


def test_batched_flip_counts_empty_and_all_zero():
    pop = make_population()
    empty = pop.flip_counts_for(0, np.array([], dtype=np.int64), np.array([]))
    assert empty.size == 0
    zeros = pop.flip_counts_for(0, np.arange(5), np.zeros(5))
    assert zeros.tolist() == [0, 0, 0, 0, 0]
