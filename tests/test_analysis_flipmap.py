"""Flip-map aggregation and rendering."""

import pytest

from repro import QUICK_SCALE, rhohammer_config
from repro.analysis.flipmap import build_flip_map, render_flip_map
from repro.dram.cells import FlipEvent
from repro.exploit.endtoend import canonical_compact_pattern
from repro.hammer.session import HammerSession


def make_flip(bank=0, row=100, bit=8, direction=1):
    return FlipEvent(bank=bank, row=row, bit_index=bit, direction=direction)


def test_empty_flip_map():
    flip_map = build_flip_map([])
    assert flip_map.total == 0
    assert flip_map.distinct_victims == 0
    assert flip_map.direction_ratio == 0.0
    assert "0 flips" in render_flip_map(flip_map)


def test_aggregation_counts_rows_and_directions():
    flips = [
        make_flip(row=100, direction=1),
        make_flip(row=100, direction=0),
        make_flip(row=102, direction=1),
    ]
    flip_map = build_flip_map(flips)
    assert flip_map.total == 3
    assert flip_map.by_row[(0, 100)] == 2
    assert flip_map.by_row[(0, 102)] == 1
    assert flip_map.zero_to_one == 2
    assert flip_map.direction_ratio == pytest.approx(2 / 3)


def test_hottest_victims_ordering():
    flips = [make_flip(row=1)] * 5 + [make_flip(row=2)] * 2
    flip_map = build_flip_map(flips)
    ranked = flip_map.hottest_victims(top=2)
    assert ranked[0] == ((0, 1), 5)
    assert ranked[1] == ((0, 2), 2)


def test_render_includes_bars():
    flips = [make_flip(row=1)] * 4 + [make_flip(row=9, direction=0)]
    text = render_flip_map(build_flip_map(flips))
    assert "row      1" in text
    assert "#" in text
    assert "1 x 1->0" in text


def test_flip_map_from_a_real_session(comet_machine):
    session = HammerSession(
        machine=comet_machine,
        config=rhohammer_config(nop_count=60, num_banks=3),
        disturbance_gain=QUICK_SCALE.disturbance_gain,
    )
    outcome = session.run_pattern(
        canonical_compact_pattern(), 6000,
        activations=QUICK_SCALE.acts_per_pattern,
        collect_events=True,
    )
    flip_map = build_flip_map(outcome.flips)
    assert flip_map.total == outcome.flip_count > 0
    # Victims concentrate around the escapee pair's sandwiched row.
    (bank_row, count) = flip_map.hottest_victims(top=1)[0]
    assert 6000 <= bank_row[1] <= 6012
    # Flip directions are cell-determined, roughly balanced over many cells.
    assert 0.2 < flip_map.direction_ratio < 0.8
