"""[superseded] Benchmark the parallel engine: serial vs pool fuzzing.

This script is superseded by the unified suite —

    PYTHONPATH=src python scripts/bench_all.py --only engine

— and now delegates to :mod:`repro.obs.bench` so the two entry points
cannot drift.  It still writes its historical output path
(``benchmarks/results/BENCH_engine.json``) for tooling that reads it;
the payload is the unified ``rhohammer-bench-all/v1`` schema restricted
to the ``engine`` bench (serial vs parallel timings, speedup, and the
bit-identical check).

Run:  PYTHONPATH=src python scripts/bench_engine.py [--quick]
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.obs.bench import legacy_main  # noqa: E402

RESULTS_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks" / "results" / "BENCH_engine.json"
)

if __name__ == "__main__":
    raise SystemExit(legacy_main("engine", RESULTS_PATH))
