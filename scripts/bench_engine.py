"""Benchmark the parallel experiment engine: serial vs worker-pool fuzzing.

Times a Table-6-scale fuzzing campaign (BENCH scale, tuned rhoHammer
kernel) once with ``workers=1`` and once with ``workers=4``, checks the
two runs are bit-identical, and writes the timings to
``benchmarks/results/BENCH_engine.json`` so the perf trajectory can be
tracked across revisions.

The >= 2x speedup target only applies on a 4+ core machine; on smaller
boxes the script still emits the JSON (with ``cpu_count`` recorded) so
the data point is honest about its host.

Run:  PYTHONPATH=src python scripts/bench_engine.py [--patterns N] [--workers N]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import time

from repro import BENCH_SCALE, RunBudget, build_machine
from repro.engine import default_workers
from repro.hammer.nops import tuned_config_for
from repro.patterns.fuzzer import FuzzingCampaign

RESULTS_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks" / "results" / "BENCH_engine.json"
)


def _campaign(patterns: int, workers: int):
    machine = build_machine("raptor_lake", "S3", scale=BENCH_SCALE, seed=606)
    campaign = FuzzingCampaign(
        machine=machine,
        config=tuned_config_for("raptor_lake"),
        scale=BENCH_SCALE,
        trials_per_pattern=1,
        seed_name="bench-engine",
    )
    start = time.perf_counter()
    report = campaign.execute(
        RunBudget(max_trials=patterns, workers=workers)
    )
    return time.perf_counter() - start, report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--patterns", type=int, default=24,
                        help="patterns per campaign (default: 24)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker count for the parallel run (default: 4)")
    args = parser.parse_args()

    cpu_count = default_workers()
    print(f"host: {cpu_count} usable core(s); "
          f"fuzzing {args.patterns} patterns at BENCH scale")

    serial_s, serial = _campaign(args.patterns, workers=1)
    print(f"serial   (workers=1): {serial_s:7.2f}s  "
          f"{serial.total_flips} flips")
    parallel_s, parallel = _campaign(args.patterns, workers=args.workers)
    print(f"parallel (workers={args.workers}): {parallel_s:7.2f}s  "
          f"{parallel.total_flips} flips")

    identical = (
        serial.total_flips == parallel.total_flips
        and serial.best_pattern_flips == parallel.best_pattern_flips
        and serial.effective_patterns == parallel.effective_patterns
        and serial.mean_miss_rate == parallel.mean_miss_rate
    )
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(f"speedup: {speedup:.2f}x  bit-identical: {identical}")

    payload = {
        "benchmark": "table6_scale_fuzzing",
        "platform": "raptor_lake",
        "scale": "BENCH",
        "patterns": args.patterns,
        "cpu_count": cpu_count,
        "python": platform.python_version(),
        "serial_seconds": round(serial_s, 3),
        "parallel_workers": args.workers,
        "parallel_seconds": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "bit_identical": identical,
        "total_flips": serial.total_flips,
        "meets_target": bool(speedup >= 2.0 or cpu_count < 4),
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH.relative_to(os.getcwd())}"
          if RESULTS_PATH.is_relative_to(os.getcwd())
          else f"wrote {RESULTS_PATH}")

    if not identical:
        return 1
    if cpu_count >= 4 and speedup < 2.0:
        print("warning: below the 2x target despite 4+ cores")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
