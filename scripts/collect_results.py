"""Collect benchmark reports into one RESULTS.md.

Reads every ``benchmarks/results/*.txt`` artefact written by the harness
and assembles them into a single markdown document, in the paper's
presentation order, so a full run's evidence is reviewable in one place.

Run:  python scripts/collect_results.py [output.md]
"""

from __future__ import annotations

import pathlib
import sys

ORDER = [
    ("table1_2_setups", "Tables 1 & 2 — experimental setups"),
    ("fig3_threshold", "Figure 3 — SBDR latency distribution"),
    ("fig4_heatmap", "Figure 4 — duet heatmaps"),
    ("table4_mappings", "Table 4 — recovered mappings"),
    ("table5_reveng_time", "Table 5 — reverse-engineering comparison"),
    ("fig6_attack_time", "Figure 6 — attack time by instruction"),
    ("fig8_missrate", "Figure 8 — miss rate and time vs banks"),
    ("fig9_multibank_flips", "Figure 9 — multi-bank effectiveness"),
    ("fig10_nop_sweep", "Figure 10 — NOP count sweep"),
    ("table3_barriers", "Table 3 — barrier comparison"),
    ("table6_fuzzing", "Table 6 — fuzzing campaigns"),
    ("fig11_sweeping", "Figure 11 — sweeping flip rates"),
    ("e2e_exploit", "Section 5.3 — end-to-end exploit"),
    ("ablation_mitigations", "Section 6 — mitigation ablation"),
    ("ablation_design", "Design-choice ablation"),
    ("ablation_multithread", "Section 4.5 — multi-threading ablation"),
    ("future_ddr5", "Section 6 — DDR5 outlook"),
]


def main() -> int:
    results_dir = pathlib.Path(__file__).parent.parent / "benchmarks" / "results"
    output = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "RESULTS.md")
    if not results_dir.is_dir():
        print(f"no results at {results_dir}; run the benchmark suite first")
        return 1
    sections = ["# RESULTS — latest benchmark-harness outputs", ""]
    missing = []
    for stem, title in ORDER:
        path = results_dir / f"{stem}.txt"
        if not path.exists():
            missing.append(stem)
            continue
        sections += [f"## {title}", "", "```", path.read_text().rstrip(), "```", ""]
    extras = sorted(
        p.stem for p in results_dir.glob("*.txt")
        if p.stem not in {stem for stem, _ in ORDER}
    )
    for stem in extras:
        sections += [
            f"## {stem}", "", "```",
            (results_dir / f"{stem}.txt").read_text().rstrip(), "```", "",
        ]
    if missing:
        sections += [
            "## Missing artefacts",
            "",
            "Not present in this run: " + ", ".join(missing),
            "",
        ]
    output.write_text("\n".join(sections))
    print(f"wrote {output} ({len(ORDER) - len(missing)} artefacts"
          f"{', ' + str(len(missing)) + ' missing' if missing else ''})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
