"""Run the unified benchmark suite into one schema'd BENCH_all.json.

Thin wrapper over :mod:`repro.obs.bench` so the suite, the regression
gate, and the ``rhohammer bench`` subcommand share one implementation.

    PYTHONPATH=src python scripts/bench_all.py                  # full suite
    PYTHONPATH=src python scripts/bench_all.py --quick --check  # the CI gate

``--check`` compares deterministic outcomes against the committed
baseline in ``benchmarks/baselines/BENCH_all.json`` and exits nonzero on
regressions beyond ``--rel-threshold``; wall timings are informational
unless ``--wall-threshold`` is given.

Unlike plain ``rhohammer bench``, this script also appends a one-line
summary of every run to the repo-root ``BENCH_trajectory.json`` (disable
with ``--trajectory none``), so the perf trajectory across PRs is
visible straight from ``git log -p BENCH_trajectory.json``.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.obs.bench import DEFAULT_TRAJECTORY, main  # noqa: E402

if __name__ == "__main__":
    argv = sys.argv[1:]
    if not any(arg.startswith("--trajectory") for arg in argv):
        argv += ["--trajectory", str(DEFAULT_TRAJECTORY)]
    raise SystemExit(main(argv))
