"""[superseded] Benchmark the telemetry layer's disabled-path overhead.

This script is superseded by the unified suite —

    PYTHONPATH=src python scripts/bench_all.py --only obs

— and now delegates to :mod:`repro.obs.bench` so the two entry points
cannot drift.  It still writes its historical output path
(``benchmarks/results/BENCH_obs.json``) for tooling that reads it; the
payload is the unified ``rhohammer-bench-all/v1`` schema restricted to
the ``obs`` bench (disabled vs metrics-enabled timings, the per-check
guard cost in ns, and the telemetry-neutrality check).

Run:  PYTHONPATH=src python scripts/bench_obs.py [--quick]
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.obs.bench import legacy_main  # noqa: E402

RESULTS_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks" / "results" / "BENCH_obs.json"
)

if __name__ == "__main__":
    raise SystemExit(legacy_main("obs", RESULTS_PATH))
