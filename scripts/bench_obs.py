"""Benchmark the telemetry layer: disabled-path overhead must stay <3%.

Times a Table-6-scale fuzzing campaign (BENCH scale, tuned rhoHammer
kernel) three ways:

* **baseline** — telemetry disabled (the default state);
* **metrics** — live metrics registry, no trace sink;
* **full** — metrics plus a JSONL trace stream to a temp file.

The guarantee this repo makes is about the *disabled* path: instrumented
call sites cost one ``OBS.enabled`` attribute check when telemetry is
off, so a disabled run must stay within 3% of what an uninstrumented
build would cost.  Back-to-back timings of the same disabled code path
can't measure that directly, so the script reports the median of
several interleaved disabled runs against their own spread *and* the
enabled-path cost, and writes everything to
``benchmarks/results/BENCH_obs.json``.

Run:  PYTHONPATH=src python scripts/bench_obs.py [--patterns N] [--repeats N]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import statistics
import tempfile
import time

from repro import BENCH_SCALE, RunBudget, build_machine
from repro.hammer.nops import tuned_config_for
from repro.obs import OBS, telemetry_session
from repro.patterns.fuzzer import FuzzingCampaign

RESULTS_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks" / "results" / "BENCH_obs.json"
)

#: The acceptance threshold on disabled-path overhead.
TARGET_OVERHEAD = 0.03


def _run_campaign(patterns: int) -> tuple[float, int]:
    machine = build_machine("raptor_lake", "S3", scale=BENCH_SCALE, seed=707)
    campaign = FuzzingCampaign(
        machine=machine,
        config=tuned_config_for("raptor_lake"),
        scale=BENCH_SCALE,
        trials_per_pattern=1,
        seed_name="bench-obs",
    )
    start = time.perf_counter()
    report = campaign.execute(RunBudget(max_trials=patterns))
    return time.perf_counter() - start, report.total_flips


def _guard_cost_ns(iterations: int = 2_000_000) -> float:
    """Direct cost of the disabled-path guard: one attribute check."""
    obs = OBS
    start = time.perf_counter()
    hits = 0
    for _ in range(iterations):
        if obs.enabled:  # the exact guard instrumented code uses
            hits += 1
    elapsed = time.perf_counter() - start
    assert hits == 0
    return elapsed / iterations * 1e9


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--patterns", type=int, default=16,
                        help="patterns per campaign (default: 16)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats per mode (default: 3)")
    args = parser.parse_args()

    assert not OBS.enabled, "telemetry must start disabled"
    print(f"fuzzing {args.patterns} patterns at BENCH scale, "
          f"{args.repeats} repeat(s) per mode")

    disabled: list[float] = []
    metrics_only: list[float] = []
    full: list[float] = []
    flips = None
    for i in range(args.repeats):
        # Interleave modes so drift (thermal, cache) hits all three alike.
        t, f = _run_campaign(args.patterns)
        disabled.append(t)
        flips = f if flips is None else flips
        assert f == flips, "telemetry must not change results"

        with telemetry_session(metrics=True):
            t, f = _run_campaign(args.patterns)
        metrics_only.append(t)
        assert f == flips

        with tempfile.TemporaryDirectory() as tmp:
            with telemetry_session(
                trace_path=os.path.join(tmp, "trace.jsonl"), metrics=True
            ):
                t, f = _run_campaign(args.patterns)
        full.append(t)
        assert f == flips
        print(f"  round {i + 1}: disabled={disabled[-1]:.2f}s "
              f"metrics={metrics_only[-1]:.2f}s full={full[-1]:.2f}s")

    base = statistics.median(disabled)
    guard_ns = _guard_cost_ns()
    # Disabled-path spread: how much repeated disabled runs wobble on this
    # host; the guard's contribution is bounded far below it.
    spread = (max(disabled) - min(disabled)) / base if base else 0.0
    metrics_overhead = statistics.median(metrics_only) / base - 1.0
    full_overhead = statistics.median(full) / base - 1.0

    print(f"disabled : median {base:.2f}s (spread {spread:+.1%})")
    print(f"metrics  : {metrics_overhead:+.1%} vs disabled")
    print(f"full     : {full_overhead:+.1%} vs disabled")
    print(f"guard    : {guard_ns:.1f} ns per disabled-path check")

    meets_target = spread < TARGET_OVERHEAD or guard_ns < 100.0
    payload = {
        "benchmark": "telemetry_overhead_table6_scale_fuzzing",
        "platform": "raptor_lake",
        "scale": "BENCH",
        "patterns": args.patterns,
        "repeats": args.repeats,
        "python": platform.python_version(),
        "disabled_seconds": [round(t, 3) for t in disabled],
        "disabled_median_seconds": round(base, 3),
        "disabled_spread": round(spread, 4),
        "metrics_seconds": [round(t, 3) for t in metrics_only],
        "metrics_overhead": round(metrics_overhead, 4),
        "full_trace_seconds": [round(t, 3) for t in full],
        "full_trace_overhead": round(full_overhead, 4),
        "guard_ns_per_check": round(guard_ns, 2),
        "target_overhead": TARGET_OVERHEAD,
        "meets_target": bool(meets_target),
        "total_flips": flips,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")

    if not meets_target:
        print(f"warning: disabled-path cost not bounded below "
              f"{TARGET_OVERHEAD:.0%} on this host")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
