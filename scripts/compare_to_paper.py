"""Run a compact measurement pass and score it against the paper's claims.

Collects the key quantities (fuzzing totals, sweeping rates, recovery
times) at the quick simulation scale and evaluates the machine-checkable
shape claims from ``repro.analysis.paper``.

Run:  python scripts/compare_to_paper.py
"""

from __future__ import annotations

from repro import (
    QUICK_SCALE,
    FuzzingCampaign,
    RunBudget,
    RhoHammerRevEng,
    TimingOracle,
    baseline_load_config,
    build_machine,
    rhohammer_config,
    sweep_pattern,
)
from repro.analysis.paper import evaluate_claims, render_scorecard
from repro.exploit.endtoend import canonical_compact_pattern
from repro.reveng.baselines import DramDigRevEng


def fuzz_total(machine, config, patterns=12) -> int:
    campaign = FuzzingCampaign(
        machine=machine, config=config, scale=QUICK_SCALE,
        trials_per_pattern=1, seed_name="compare",
    )
    return campaign.execute(RunBudget.trials(patterns)).total_flips


def main() -> int:
    measured: dict[str, float] = {}

    for arch, nops in (("comet_lake", 60), ("raptor_lake", 220)):
        machine = build_machine(arch, "S3", scale=QUICK_SCALE, seed=42)
        rho = rhohammer_config(nop_count=nops, num_banks=3)
        measured[f"flips/{arch}/rho"] = fuzz_total(machine, rho)
        measured[f"flips/{arch}/baseline"] = fuzz_total(
            machine, baseline_load_config(num_banks=1)
        )
        sweep = sweep_pattern(
            machine, rho, canonical_compact_pattern(),
            RunBudget.trials(10), QUICK_SCALE,
        )
        measured[f"rate/{arch}/rho"] = sweep.flips_per_minute

    comet = build_machine("comet_lake", "S3", scale=QUICK_SCALE, seed=43)
    measured["flips/comet_lake/rho-multibank"] = fuzz_total(
        comet, rhohammer_config(nop_count=60, num_banks=3)
    )
    measured["flips/comet_lake/rho-singlebank"] = fuzz_total(
        comet, rhohammer_config(nop_count=60, num_banks=1)
    )

    protected = build_machine(
        "raptor_lake", "S3", scale=QUICK_SCALE, seed=42, ptrr_enabled=True
    )
    measured["flips/raptor_lake/rho-ptrr"] = fuzz_total(
        protected, rhohammer_config(nop_count=220, num_banks=3)
    )

    for arch in ("comet_lake", "raptor_lake"):
        machine = build_machine(arch, "S3", seed=44)
        oracle = TimingOracle.allocate(machine, fraction=0.5)
        result = RhoHammerRevEng(oracle, collect_heatmap=False).run()
        measured[f"reveng_s/rhohammer/{arch}"] = result.runtime_seconds
    dramdig_machine = build_machine("comet_lake", "S3", seed=44)
    dramdig_oracle = TimingOracle.allocate(dramdig_machine, fraction=0.4)
    dramdig = DramDigRevEng(dramdig_oracle).run()
    if dramdig.succeeded:
        measured["reveng_s/dramdig/comet_lake"] = dramdig.runtime_seconds

    print("measured quantities:")
    for key in sorted(measured):
        print(f"  {key:36s} {measured[key]:,.1f}")
    print()
    results = evaluate_claims(measured)
    print(render_scorecard(results))
    return 0 if not any(r.status == "fail" for r in results) else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
