"""Calibration harness: quick grid over (platform, DIMM, kernel) cells.

Not part of the library — a development tool for tuning the model
constants against the paper's qualitative targets.  Run:

    python scripts/calibrate.py [n_patterns]
"""

from __future__ import annotations

import sys
import time

from repro.cpu.isa import baseline_load_config, rhohammer_config
from repro.hammer.session import HammerSession
from repro.patterns.fuzzer import PatternFuzzer
from repro.system import build_machine
from repro.system.calibration import BENCH_SCALE

#: Qualitative targets, per 20 patterns x 2 locations (paper anchors in
#: parentheses refer to the S3 column of Table 6):
#:   comet  rho-M eff ~60%  total ~1500   (205K per 2 h)
#:   comet  BL-S  eff ~25%  total ~250    (36K -> ~1/6 of rho)
#:   rocket rho-M eff ~55%  total ~900    (94K)
#:   rocket BL-S  eff ~15%  total ~90     (9.7K -> ~1/10 of rho)
#:   alder  rho-M eff ~10%  total ~10     (696)
#:   raptor rho-M eff ~12%  total ~15     (924)
#:   alder/raptor BL and nop0 prefetch: ~0

CELLS = [
    ("comet_lake", rhohammer_config(nop_count=60, num_banks=3), "rho-M"),
    ("comet_lake", rhohammer_config(nop_count=60, num_banks=1), "rho-S"),
    ("comet_lake", baseline_load_config(num_banks=1), "BL-S"),
    ("comet_lake", baseline_load_config(num_banks=3), "BL-M"),
    ("rocket_lake", rhohammer_config(nop_count=80, num_banks=3), "rho-M"),
    ("rocket_lake", baseline_load_config(num_banks=1), "BL-S"),
    ("alder_lake", rhohammer_config(nop_count=220, num_banks=3), "rho-M"),
    ("alder_lake", rhohammer_config(nop_count=0, num_banks=3), "pf-nop0"),
    ("alder_lake", baseline_load_config(num_banks=1), "BL-S"),
    ("raptor_lake", rhohammer_config(nop_count=220, num_banks=3), "rho-M"),
    ("raptor_lake", rhohammer_config(nop_count=0, num_banks=3), "pf-nop0"),
    ("raptor_lake", baseline_load_config(num_banks=1), "BL-S"),
]


def run_cell(platform: str, config, label: str, n_patterns: int, dimm: str) -> str:
    machine = build_machine(platform, dimm, scale=BENCH_SCALE)
    fuzzer = PatternFuzzer(rng=machine.rng.child("pf"))
    session = HammerSession(
        machine=machine,
        config=config,
        disturbance_gain=BENCH_SCALE.disturbance_gain,
    )
    total = effective = best = 0
    miss_sum = 0.0
    started = time.time()
    for i in range(n_patterns):
        pattern = fuzzer.generate()
        flips = 0
        for base_row in (5000 + i * 300, 20000 + i * 300):
            outcome = session.run_pattern(
                pattern, base_row, activations=BENCH_SCALE.acts_per_pattern
            )
            flips += outcome.flip_count
            miss_sum += outcome.cache_miss_rate
        total += flips
        effective += flips > 0
        best = max(best, flips)
    elapsed = time.time() - started
    return (
        f"{platform:12s} {label:8s} {dimm:3s} total={total:6d} "
        f"eff={effective:2d}/{n_patterns} best={best:5d} "
        f"miss={miss_sum / (2 * n_patterns):.2f} ({elapsed:.0f}s)"
    )


def main() -> None:
    n_patterns = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    dimm = sys.argv[2] if len(sys.argv) > 2 else "S3"
    for platform, config, label in CELLS:
        print(run_cell(platform, config, label, n_patterns, dimm))


if __name__ == "__main__":
    main()
