"""Figure 5 end to end: the whole rhoHammer workflow as one campaign.

Runs every phase of the framework against a simulated Raptor Lake machine
— the platform where conventional attacks fail entirely — and prints the
per-phase record: mapping recovery and cross-validation, NOP tuning,
pattern fuzzing, refinement, sweeping, and the PTE exploit.

Run:  python examples/full_campaign.py [platform]
"""

import sys

from repro import QUICK_SCALE, build_machine
from repro.campaign import RhoHammerCampaign


def main() -> None:
    platform = sys.argv[1] if len(sys.argv) > 1 else "raptor_lake"
    machine = build_machine(platform, "S3", scale=QUICK_SCALE)
    print(f"Target: {machine.describe()}\n")

    campaign = RhoHammerCampaign(
        machine=machine,
        scale=QUICK_SCALE,
        fuzz_patterns=20,
        sweep_locations=10,
        run_exploit=True,
    )
    report = campaign.run()
    print(report.summary())
    print(f"\ncampaign succeeded: {report.succeeded}")
    if report.best_pattern is not None:
        print(f"best pattern: {report.best_pattern.describe()}")


if __name__ == "__main__":
    main()
