"""Mitigation study (Section 6): what actually stops rhoHammer?

Repeats the same fuzzing campaign on Raptor Lake under four defences:

* none (baseline vulnerability),
* pTRR / BIOS "Rowhammer Prevention" (probabilistic neighbour refresh),
* address-mapping scrambling (boot-time keyed row permutation),
* randomized row-swap (periodic random row-pair exchange).

The paper found the pTRR BIOS option eliminated nearly all flips; the two
research defences break the templated adjacency the patterns rely on.

Run:  python examples/mitigation_study.py
"""

from repro import (
    FuzzingCampaign,
    QUICK_SCALE,
    RunBudget,
    build_machine,
    rhohammer_config,
)
from repro.analysis.reporting import Table
from repro.dram.mitigations import RandomizedRowSwap, ScrambledMapping


def campaign_flips(machine) -> tuple[int, int]:
    config = rhohammer_config(nop_count=220, num_banks=3)
    campaign = FuzzingCampaign(machine=machine, config=config, scale=QUICK_SCALE)
    report = campaign.execute(RunBudget(hours=2.0, max_trials=25))
    return report.total_flips, report.effective_patterns


def main() -> None:
    table = Table(
        "rhoHammer on Raptor Lake / S3 under Section 6 mitigations",
        ["mitigation", "total flips", "effective patterns"],
    )

    machine = build_machine("raptor_lake", "S3", scale=QUICK_SCALE)
    flips, effective = campaign_flips(machine)
    table.add_row("none", flips, effective)

    machine = build_machine("raptor_lake", "S3", scale=QUICK_SCALE, ptrr_enabled=True)
    flips, effective = campaign_flips(machine)
    table.add_row("pTRR (BIOS option)", flips, effective)

    base = build_machine("raptor_lake", "S3", scale=QUICK_SCALE)
    scrambled = build_machine(
        "raptor_lake",
        "S3",
        scale=QUICK_SCALE,
        remapper=ScrambledMapping(
            geometry=base.dimm.spec.geometry, boot_key=0xC0FFEE
        ),
    )
    flips, effective = campaign_flips(scrambled)
    table.add_row("address scrambling", flips, effective)

    swap_machine = build_machine("raptor_lake", "S3", scale=QUICK_SCALE)
    swap_machine.controller.remapper = RandomizedRowSwap(
        geometry=swap_machine.dimm.spec.geometry,
        rng=swap_machine.rng.child("rrs"),
        # The RRS paper swaps after ~800 real activations; our compressed
        # timeline deposits time_compression activations per simulated ACT.
        swap_threshold=max(1, int(800 / QUICK_SCALE.time_compression)),
    )
    flips, effective = campaign_flips(swap_machine)
    table.add_row("randomized row-swap", flips, effective)

    print(table.render())


if __name__ == "__main__":
    main()
