"""DDR5 outlook (Section 6): why the attack stops, and what carries over.

Three measurements on a simulated Raptor Lake machine with a DDR5 DIMM:

1. the same ρHammer campaign that flips the DDR4 DIMMs produces nothing
   under refresh management (RFM) — the paper's negative result;
2. disabling RFM (a hypothetical device without the mitigation) restores
   flips, showing the prefetch paradigm's activation rate itself still
   carries over to DDR5;
3. the reverse-engineering method extends to the sub-channel-enlarged
   DDR5 mapping, the direction the paper names for future work.

Run:  python examples/ddr5_outlook.py
"""

from repro import QUICK_SCALE, RunBudget, rhohammer_config
from repro.analysis.reporting import Table
from repro.patterns.fuzzer import FuzzingCampaign
from repro.reveng import RhoHammerRevEng, TimingOracle, compare_mappings
from repro.system.machine import build_ddr5_machine


def campaign_flips(machine) -> int:
    campaign = FuzzingCampaign(
        machine=machine,
        config=rhohammer_config(nop_count=220, num_banks=3),
        scale=QUICK_SCALE,
    )
    return campaign.execute(RunBudget.trials(15)).total_flips


def main() -> None:
    table = Table(
        "rhoHammer on DDR5 (Raptor Lake / D1, 15-pattern fuzzing)",
        ["configuration", "result"],
    )

    protected = build_ddr5_machine("raptor_lake", scale=QUICK_SCALE)
    table.add_row("DDR5 + RFM (production)", f"{campaign_flips(protected)} flips")

    unprotected = build_ddr5_machine(
        "raptor_lake", scale=QUICK_SCALE, rfm_enabled=False
    )
    table.add_row("DDR5, RFM disabled", f"{campaign_flips(unprotected)} flips")

    machine = build_ddr5_machine("raptor_lake", seed=2028)
    oracle = TimingOracle.allocate(machine, fraction=0.5)
    recovered = RhoHammerRevEng(oracle, collect_heatmap=False).run()
    correct = compare_mappings(recovered.mapping, machine.mapping).fully_correct
    table.add_row(
        "sub-channel mapping recovery",
        f"correct={correct} in {recovered.runtime_seconds:.1f}s",
    )
    print(table.render())
    print(f"\nrecovered: {recovered.mapping.describe()}")


if __name__ == "__main__":
    main()
