"""Pattern zoo: the literature's hammering strategies vs the TRR sampler.

Replays a decade of Rowhammer history on the simulated platform: the
original double-sided pattern (Kim et al. 2014), the historical
single-sided variant, TRRespass-style many-sided hammering, SMASH-style
synchronised hammering, and a Blacksmith-style frequency-domain pattern —
first against the default TRR sampler, then against a deliberately weak
one, so the reason each generation of patterns appeared is visible.

Run:  python examples/pattern_zoo.py
"""

from repro import QUICK_SCALE, build_machine, rhohammer_config
from repro.analysis.reporting import Table
from repro.dram.trr import TrrConfig
from repro.hammer.session import HammerSession
from repro.patterns.library import PATTERN_LIBRARY


def flips_for(machine, pattern) -> int:
    session = HammerSession(
        machine=machine,
        config=rhohammer_config(nop_count=60, num_banks=3),
        disturbance_gain=QUICK_SCALE.disturbance_gain,
    )
    return sum(
        session.run_pattern(
            pattern, row, activations=QUICK_SCALE.acts_per_pattern
        ).flip_count
        for row in (6000, 22000)
    )


def main() -> None:
    modern = build_machine("comet_lake", "S3", scale=QUICK_SCALE)
    weak = build_machine(
        "comet_lake", "S3", scale=QUICK_SCALE, seed=7,
        trr_config=TrrConfig(capacity=4, refreshes_per_ref=1),
    )

    table = Table(
        "Hammering strategies vs TRR (bit flips, Comet Lake / S3)",
        ["pattern", "modern TRR", "weak sampler"],
    )
    for name, factory in PATTERN_LIBRARY.items():
        pattern = factory()
        table.add_row(name, flips_for(modern, pattern), flips_for(weak, pattern))
    print(table.render())
    print(
        "\nReading: uniform patterns die against a counting sampler (hence"
        "\nTRRespass's many-sided escalation, which still beats *small*"
        "\nsamplers); only the frequency-domain non-uniform structure the"
        "\nrhoHammer fuzzer searches bypasses the modern configuration."
    )


if __name__ == "__main__":
    main()
