"""Quickstart: reverse-engineer a mapping and induce bit flips.

Walks the two core phases of a rhoHammer campaign on a simulated
Raptor Lake machine (where conventional load-based attacks fail):

1. recover the proprietary DRAM address mapping through SBDR timing, and
2. fuzz non-uniform patterns with the counter-speculation prefetch kernel
   until bit flips appear.

Run:  python examples/quickstart.py
"""

from repro import (
    FuzzingCampaign,
    QUICK_SCALE,
    RhoHammerRevEng,
    RunBudget,
    TimingOracle,
    build_machine,
    rhohammer_config,
)
from repro.reveng import compare_mappings


def main() -> None:
    machine = build_machine("raptor_lake", "S2", scale=QUICK_SCALE)
    print(f"Machine: {machine.describe()}")

    # ------------------------------------------------------------------
    # Phase 1: reverse-engineer the DRAM address mapping (Algorithm 1).
    # ------------------------------------------------------------------
    print("\n[1/2] Reverse-engineering the DRAM address mapping ...")
    oracle = TimingOracle.allocate(machine, fraction=0.5)
    result = RhoHammerRevEng(oracle, collect_heatmap=False).run()
    score = compare_mappings(result.mapping, machine.mapping)
    print(f"  recovered : {result.mapping.describe()}")
    print(f"  correct   : {score.fully_correct}")
    print(f"  runtime   : {result.runtime_seconds:.1f} attacker-seconds "
          f"({result.measurements} timing measurements)")

    # ------------------------------------------------------------------
    # Phase 2: prefetch-based counter-speculation hammering.
    # ------------------------------------------------------------------
    print("\n[2/2] Fuzzing non-uniform patterns with the rhoHammer kernel ...")
    config = rhohammer_config(nop_count=220, num_banks=3)
    campaign = FuzzingCampaign(
        machine=machine, config=config, scale=QUICK_SCALE
    )
    report = campaign.execute(RunBudget(hours=2.0, max_trials=40))
    print(f"  patterns tried     : {report.patterns_tried}")
    print(f"  effective patterns : {report.effective_patterns}")
    print(f"  total bit flips    : {report.total_flips}")
    print(f"  best pattern flips : {report.best_pattern_flips}")
    if report.best_pattern is not None:
        print(f"  best pattern       : {report.best_pattern.describe()}")


if __name__ == "__main__":
    main()
