"""End-to-end PTE corruption attack (Section 5.3) on Raptor Lake.

Runs the full exploitation chain an unprivileged attacker would use:

1. tune the NOP pseudo-barrier count for the platform,
2. find a compact effective pattern that fits a 4 MiB buddy block,
3. exhaust the buddy allocator and template flips in contiguous blocks,
4. classify exploitable flips (PTE frame-number bit range [12, 19]),
5. corrupt a PTE and verify page-table read/write control.

Run:  python examples/end_to_end_attack.py [platform]
"""

import sys

from repro import QUICK_SCALE, build_machine, rhohammer_config
from repro.exploit import EndToEndAttack
from repro.exploit.endtoend import canonical_compact_pattern, find_compact_pattern
from repro.hammer.nops import tune_nop_count


def main() -> None:
    platform = sys.argv[1] if len(sys.argv) > 1 else "raptor_lake"
    machine = build_machine(platform, "S3", scale=QUICK_SCALE)
    print(f"Target: {machine.describe()}")

    # ------------------------------------------------------------------
    # Tuning phase: find the platform's optimal NOP count (Figure 10).
    # ------------------------------------------------------------------
    print("\n[1/3] Tuning the NOP pseudo-barrier ...")
    base = rhohammer_config(nop_count=0, num_banks=3)
    tuning = tune_nop_count(
        machine,
        base,
        canonical_compact_pattern(),
        base_rows=[4096, 20000],
        activations_per_row=QUICK_SCALE.acts_per_pattern,
        nop_grid=(0, 100, 220, 400, 1000),
        scale=QUICK_SCALE,
    )
    print(f"  flips by NOP count : {tuning.flips_by_count}")
    print(f"  optimal NOP count  : {tuning.best_nop_count}")
    config = base.with_nops(tuning.best_nop_count)

    # ------------------------------------------------------------------
    # Pattern selection: compact enough to fit a 4 MiB templating block.
    # ------------------------------------------------------------------
    print("\n[2/3] Selecting a compact effective pattern ...")
    pattern, flips = find_compact_pattern(machine, config, QUICK_SCALE, tries=30)
    if pattern is None or flips == 0:
        pattern = canonical_compact_pattern()
        print("  fuzzing found none; using the canonical tuned pattern")
    else:
        print(f"  fuzzed pattern with {flips} flips: {pattern.describe()}")

    # ------------------------------------------------------------------
    # Exploit: massage, template, corrupt.
    # ------------------------------------------------------------------
    print("\n[3/3] Massaging + templating + PTE corruption ...")
    attack = EndToEndAttack(
        machine=machine, config=config, pattern=pattern, scale=QUICK_SCALE
    )
    outcome = attack.run()
    print(f"  blocks templated   : {outcome.blocks_templated}")
    print(f"  total flips        : {outcome.total_flips}")
    print(f"  exploitable flips  : {outcome.exploitable_flips}")
    print(f"  templating time    : {outcome.templating_seconds:.1f} s (virtual)")
    print(f"  end-to-end time    : {outcome.total_seconds:.1f} s (virtual)")
    if outcome.succeeded:
        print(f"  PTE {outcome.corrupted_pte_before:#x} -> "
              f"{outcome.corrupted_pte_after:#x}")
        print(f"  page table redirected to attacker frame "
              f"{outcome.redirected_frame} -> page-table read/write achieved")
        # Continue to the canonical ending: zero the process credentials.
        from repro.exploit.privilege import (
            PageTableControl, SimulatedKernelMemory, escalate_privileges,
        )
        kernel = SimulatedKernelMemory(cred_frame=0x40000)
        control = PageTableControl(
            memory=kernel, table_frame=outcome.redirected_frame
        )
        escalation = escalate_privileges(kernel, control)
        print(f"  cred uid {escalation.uid_before} -> {escalation.uid_after}"
              f" (root={escalation.is_root})")
    else:
        print("  attack failed (no exploitable flip found in budget)")


if __name__ == "__main__":
    main()
