"""Reverse-engineering tour: thresholds, heatmaps and prior-art failures.

Reproduces the Section 3 narrative interactively:

* Figure 3 — the bimodal SBDR latency distribution and its threshold,
* Figure 4 — duet heatmaps contrasting Comet Lake's traditional mapping
  (pure row bits -> large slow chunks) with Raptor Lake's new scheme,
* Table 5 — our structured deduction vs DRAMA / DRAMDig / DARE, showing
  each prior tool's documented failure mode.

Run:  python examples/reverse_engineering_tour.py
"""

from repro import RhoHammerRevEng, TimingOracle, build_machine
from repro.analysis.heatmap import duet_heatmap, render_heatmap
from repro.analysis.reporting import render_histogram
from repro.reveng import compare_mappings, cross_validate, find_sbdr_threshold
from repro.reveng.baselines import DareRevEng, DramaRevEng, DramDigRevEng


def threshold_demo() -> None:
    print("=" * 72)
    print("Step 0 (Figure 3): finding the SBDR threshold on Comet Lake")
    print("=" * 72)
    machine = build_machine("comet_lake", "S3")
    oracle = TimingOracle.allocate(machine, fraction=0.4)
    threshold = find_sbdr_threshold(oracle, num_pairs=1500)
    print(render_histogram(threshold.samples, bins=30, width=44))
    print(f"\nfast mode  : {threshold.fast_center_ns:.1f} ns")
    print(f"slow mode  : {threshold.slow_center_ns:.1f} ns (SBDR pairs)")
    print(f"threshold  : {threshold.threshold_ns:.1f} ns")
    print(f"slow share : {threshold.slow_fraction:.3f} "
          f"(~1/#banks for a large pool)")


def heatmap_demo(platform: str) -> None:
    print("\n" + "=" * 72)
    print(f"Step 1 (Figure 4): duet heatmap on {platform}")
    print("=" * 72)
    machine = build_machine(platform, "S2")
    oracle = TimingOracle.allocate(machine, fraction=0.4)
    threshold = find_sbdr_threshold(oracle, num_pairs=1200)
    bits = oracle.candidate_bits()[:22]  # keep the rendering narrow
    grid, bits = duet_heatmap(oracle, bits)
    print(render_heatmap(grid, bits, threshold.threshold_ns))
    print("('##' marks slower SBDR timing for that bit pair)")


def comparison_demo() -> None:
    print("\n" + "=" * 72)
    print("Table 5: rhoHammer vs prior art on Raptor Lake")
    print("=" * 72)
    machine = build_machine("raptor_lake", "S3")

    oracle = TimingOracle.allocate(machine, fraction=0.5, seed_name="ours")
    ours = RhoHammerRevEng(oracle, collect_heatmap=False).run()
    ours_ok = compare_mappings(ours.mapping, machine.mapping).fully_correct
    validation = cross_validate(ours.mapping, oracle, probes=32)
    print(f"rhoHammer : correct={ours_ok}  cross-validated="
          f"{validation.validated}  runtime={ours.runtime_seconds:.1f}s")

    for tool_cls in (DramaRevEng, DramDigRevEng, DareRevEng):
        oracle = TimingOracle.allocate(
            machine, fraction=0.5, seed_name=tool_cls.__name__
        )
        outcome = tool_cls(oracle).run()
        status = "OK" if outcome.succeeded else "FAIL"
        print(f"{outcome.tool:9s} : {status:4s} "
              f"runtime={outcome.runtime_seconds:.1f}s "
              f"({outcome.failure_reason or 'recovered a mapping'})")


def main() -> None:
    threshold_demo()
    heatmap_demo("comet_lake")
    heatmap_demo("raptor_lake")
    comparison_demo()


if __name__ == "__main__":
    main()
